(* 0-1 integer linear programming by branch-and-bound.

   The paper embeds YALMIP into rp4bc to solve the (NP-complete) table
   set-packing problem; the sealed environment has no external solver, so
   this module provides an equivalent from scratch: maximise c·x subject
   to Ax ≤ b with x ∈ {0,1}ⁿ. A greedy warm start gives the incumbent;
   depth-first branch-and-bound with a residual-capacity feasibility check
   and an optimistic remaining-objective bound either proves optimality or
   stops at a node budget and reports the best heuristic solution — the
   same "heuristic solution" behaviour the paper describes. *)

type problem = {
  nvars : int;
  objective : float array; (* length nvars *)
  (* each constraint: coefficients (length nvars), bound *)
  constraints : (float array * float) array;
}

type solution = {
  assignment : bool array;
  value : float;
  optimal : bool; (* true if branch-and-bound exhausted the tree *)
  nodes : int; (* nodes explored *)
}

let check_problem p =
  if Array.length p.objective <> p.nvars then invalid_arg "Ilp: objective length";
  Array.iter
    (fun (coefs, _) ->
      if Array.length coefs <> p.nvars then invalid_arg "Ilp: constraint length")
    p.constraints

let feasible p assignment =
  Array.for_all
    (fun (coefs, bound) ->
      let lhs = ref 0.0 in
      Array.iteri (fun i a -> if a then lhs := !lhs +. coefs.(i)) assignment;
      !lhs <= bound +. 1e-9)
    p.constraints

let value_of p assignment =
  let v = ref 0.0 in
  Array.iteri (fun i a -> if a then v := !v +. p.objective.(i)) assignment;
  !v

(* Greedy: take variables in decreasing objective order when they fit. *)
let solve_greedy p =
  check_problem p;
  let order = Array.init p.nvars (fun i -> i) in
  Array.sort (fun a b -> Float.compare p.objective.(b) p.objective.(a)) order;
  let residual = Array.map snd p.constraints in
  let assignment = Array.make p.nvars false in
  Array.iter
    (fun i ->
      if p.objective.(i) > 0.0 then begin
        let fits =
          Array.for_all2
            (fun (coefs, _) r -> coefs.(i) <= r +. 1e-9)
            p.constraints residual
        in
        if fits then begin
          assignment.(i) <- true;
          Array.iteri (fun k (coefs, _) -> residual.(k) <- residual.(k) -. coefs.(i))
            p.constraints
        end
      end)
    order;
  { assignment; value = value_of p assignment; optimal = false; nodes = 0 }

let solve ?(node_budget = 200_000) p =
  check_problem p;
  if p.nvars = 0 then
    { assignment = [||]; value = 0.0; optimal = true; nodes = 0 }
  else begin
    let greedy = solve_greedy p in
    (* Branch order: decreasing objective, so good solutions surface early
       and the optimistic bound tightens fast. *)
    let order = Array.init p.nvars (fun i -> i) in
    Array.sort (fun a b -> Float.compare p.objective.(b) p.objective.(a)) order;
    (* suffix_pos.(k) = sum of positive objectives of order.(k..) *)
    let suffix_pos = Array.make (p.nvars + 1) 0.0 in
    for k = p.nvars - 1 downto 0 do
      suffix_pos.(k) <- suffix_pos.(k + 1) +. Float.max 0.0 p.objective.(order.(k))
    done;
    let best = Array.copy greedy.assignment in
    let best_value = ref greedy.value in
    let nodes = ref 0 in
    let exhausted = ref true in
    let current = Array.make p.nvars false in
    let residual = Array.map snd p.constraints in
    let rec branch k acc =
      incr nodes;
      if !nodes > node_budget then exhausted := false
      else if k = p.nvars then begin
        if acc > !best_value +. 1e-9 then begin
          best_value := acc;
          Array.blit current 0 best 0 p.nvars
        end
      end
      else if acc +. suffix_pos.(k) > !best_value +. 1e-9 then begin
        let i = order.(k) in
        (* Branch x_i = 1 first when it fits. *)
        let fits =
          Array.for_all2
            (fun (coefs, _) r -> coefs.(i) <= r +. 1e-9)
            p.constraints residual
        in
        if fits then begin
          current.(i) <- true;
          Array.iteri
            (fun c (coefs, _) -> residual.(c) <- residual.(c) -. coefs.(i))
            p.constraints;
          branch (k + 1) (acc +. p.objective.(i));
          Array.iteri
            (fun c (coefs, _) -> residual.(c) <- residual.(c) +. coefs.(i))
            p.constraints;
          current.(i) <- false
        end;
        branch (k + 1) acc
      end
    in
    branch 0 0.0;
    assert (feasible p best);
    { assignment = best; value = !best_value; optimal = !exhausted; nodes = !nodes }
  end
