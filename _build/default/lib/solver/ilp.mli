(** 0-1 integer linear programming by branch-and-bound.

    The stand-in for the YALMIP solver the paper embeds into rp4bc:
    maximise [c·x] subject to [Ax ≤ b] with [x ∈ {0,1}ⁿ]. A greedy warm
    start seeds the incumbent; depth-first branch-and-bound with a
    residual-capacity feasibility check and an optimistic
    remaining-objective bound either proves optimality or stops at the
    node budget with the best heuristic solution found — the same
    "heuristic solution" behaviour the paper describes. *)

type problem = {
  nvars : int;
  objective : float array;  (** length [nvars] *)
  constraints : (float array * float) array;
      (** each row: coefficients (length [nvars]) and its upper bound *)
}

type solution = {
  assignment : bool array;
  value : float;
  optimal : bool;  (** [true] iff the search tree was exhausted *)
  nodes : int;  (** branch-and-bound nodes explored *)
}

val feasible : problem -> bool array -> bool
(** Does the assignment satisfy every constraint (with a small float
    tolerance)? *)

val value_of : problem -> bool array -> float

val solve_greedy : problem -> solution
(** Take variables in decreasing objective order while they fit. Always
    feasible; [optimal] is reported [false]. *)

val solve : ?node_budget:int -> problem -> solution
(** Branch-and-bound (default budget 200_000 nodes). The returned
    assignment is always feasible; [optimal] tells whether it is proved
    best.
    @raise Invalid_argument on malformed dimensions. *)
