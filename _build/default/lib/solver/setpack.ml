(* Weighted set packing on top of the 0-1 ILP solver.

   rp4bc's table-allocation problem (Sec. 3.2, "Algorithms in rP4
   Compiler") is a set-packing instance: each *option* is one way of
   placing one table into a set of memory blocks; options conflict when
   they share a block or place the same table twice; pick a
   maximum-weight conflict-free subset. *)

type option_ = {
  opt_table : int; (* table index; at most one option per table is chosen *)
  opt_resources : int list; (* resource (block) ids, each usable once *)
  opt_weight : float;
}

type result = {
  chosen : int list; (* indices into the options array *)
  weight : float;
  optimal : bool;
}

let solve ?(node_budget = 200_000) ~n_tables ~n_resources (options : option_ array) =
  let nvars = Array.length options in
  (* One ≤1 constraint per table and per resource. Only constraints that
     some option actually touches are emitted. *)
  let table_rows = Array.make n_tables [] in
  let resource_rows = Array.make n_resources [] in
  Array.iteri
    (fun v o ->
      if o.opt_table < 0 || o.opt_table >= n_tables then
        invalid_arg "Setpack.solve: bad table index";
      table_rows.(o.opt_table) <- v :: table_rows.(o.opt_table);
      List.iter
        (fun r ->
          if r < 0 || r >= n_resources then invalid_arg "Setpack.solve: bad resource id";
          resource_rows.(r) <- v :: resource_rows.(r))
        o.opt_resources)
    options;
  let mk_constraint vars =
    let coefs = Array.make nvars 0.0 in
    List.iter (fun v -> coefs.(v) <- 1.0) vars;
    (coefs, 1.0)
  in
  let constraints =
    Array.of_list
      (List.filter_map
         (fun vars -> if List.length vars > 1 then Some (mk_constraint vars) else None)
         (Array.to_list table_rows @ Array.to_list resource_rows))
  in
  let problem =
    {
      Ilp.nvars;
      objective = Array.map (fun o -> o.opt_weight) options;
      constraints;
    }
  in
  let sol = Ilp.solve ~node_budget problem in
  let chosen = ref [] in
  Array.iteri (fun i b -> if b then chosen := i :: !chosen) sol.Ilp.assignment;
  { chosen = List.rev !chosen; weight = sol.Ilp.value; optimal = sol.Ilp.optimal }
