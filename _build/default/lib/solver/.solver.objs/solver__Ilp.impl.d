lib/solver/ilp.ml: Array Float
