lib/solver/setpack.ml: Array Ilp List
