lib/solver/ilp.mli:
