(* The base design written in P4 (the paper prefers P4 for base designs:
   "P4 code is easier to write and many proven designs written in P4
   exist"). rp4fc translates this into the same rP4 design as the
   hand-written [Base_l23.source]; the PISA baseline compiles it with the
   full (monolithic) flow.

   The [variant] builders produce the *updated whole-design* sources the
   P4 flow needs for the three use cases — under PISA every update is a
   full recompile of base+function (Sec. 4.3). *)

let headers_and_parser =
  {src|
header ethernet_t {
  bit<48> dst_addr;
  bit<48> src_addr;
  bit<16> ethertype;
}
header ipv4_t {
  bit<4> version;
  bit<4> ihl;
  bit<8> tos;
  bit<16> total_len;
  bit<16> ident;
  bit<16> flags_frag;
  bit<8> ttl;
  bit<8> protocol;
  bit<16> checksum;
  bit<32> src_addr;
  bit<32> dst_addr;
}
header ipv6_t {
  bit<4> version;
  bit<8> traffic_class;
  bit<20> flow_label;
  bit<16> payload_len;
  bit<8> next_header;
  bit<8> hop_limit;
  bit<128> src_addr;
  bit<128> dst_addr;
}
|src}

let base_metadata =
  {src|
struct metadata {
  bit<16> ifindex;
  bit<16> bd;
  bit<16> vrf;
  bit<8> l3_type;
  bit<16> nexthop;
}
|src}

let base_instances =
  {src|
struct headers {
  ethernet_t ethernet;
  ipv4_t ipv4;
  ipv6_t ipv6;
}
|src}

let base_parser =
  {src|
parser MyParser(packet_in packet, out headers hdr, inout metadata meta) {
  state start {
    transition parse_ethernet;
  }
  state parse_ethernet {
    packet.extract(hdr.ethernet);
    transition select(hdr.ethernet.ethertype) {
      0x0800 : parse_ipv4;
      0x86dd : parse_ipv6;
      default : accept;
    }
  }
  state parse_ipv4 {
    packet.extract(hdr.ipv4);
    transition accept;
  }
  state parse_ipv6 {
    packet.extract(hdr.ipv6);
    transition accept;
  }
}
|src}

let base_actions =
  {src|
  action set_ifindex(bit<16> ifindex) { meta.ifindex = ifindex; }
  action set_bd_vrf(bit<16> bd, bit<16> vrf) {
    meta.bd = bd;
    meta.vrf = vrf;
  }
  action set_l3_v4() { meta.l3_type = 4; }
  action set_l3_v6() { meta.l3_type = 6; }
  action set_l2() { meta.l3_type = 0; }
  action set_nexthop(bit<16> nh) { meta.nexthop = nh; }
  action set_bd_dmac(bit<16> bd, bit<48> dmac) {
    meta.bd = bd;
    hdr.ethernet.dst_addr = dmac;
  }
  action rewrite_v4(bit<48> smac) {
    hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    hdr.ethernet.src_addr = smac;
  }
  action rewrite_v6(bit<48> smac) {
    hdr.ipv6.hop_limit = hdr.ipv6.hop_limit - 1;
    hdr.ethernet.src_addr = smac;
  }
  action set_out_port(bit<16> port) { standard_metadata.egress_spec = port; }
|src}

let base_tables =
  {src|
  table port_map {
    key = { standard_metadata.ingress_port : exact; }
    actions = { set_ifindex; NoAction; }
    size = 64;
    default_action = NoAction();
  }
  table bridge_vrf {
    key = { meta.ifindex : exact; }
    actions = { set_bd_vrf; NoAction; }
    size = 256;
    default_action = NoAction();
  }
  table routable_v4 {
    key = { meta.vrf : exact; hdr.ethernet.dst_addr : exact; }
    actions = { set_l3_v4; set_l2; }
    size = 128;
    default_action = set_l2();
  }
  table routable_v6 {
    key = { meta.vrf : exact; hdr.ethernet.dst_addr : exact; }
    actions = { set_l3_v6; set_l2; }
    size = 128;
    default_action = set_l2();
  }
  table ipv4_lpm {
    key = { meta.vrf : exact; hdr.ipv4.dst_addr : lpm; }
    actions = { set_nexthop; NoAction; }
    size = 4096;
    default_action = NoAction();
  }
  table ipv6_lpm {
    key = { meta.vrf : exact; hdr.ipv6.dst_addr : lpm; }
    actions = { set_nexthop; NoAction; }
    size = 2048;
    default_action = NoAction();
  }
  table ipv4_host {
    key = { meta.vrf : exact; hdr.ipv4.dst_addr : exact; }
    actions = { set_nexthop; NoAction; }
    size = 4096;
    default_action = NoAction();
  }
  table ipv6_host {
    key = { meta.vrf : exact; hdr.ipv6.dst_addr : exact; }
    actions = { set_nexthop; NoAction; }
    size = 2048;
    default_action = NoAction();
  }
  table nexthop {
    key = { meta.nexthop : exact; }
    actions = { set_bd_dmac; NoAction; }
    size = 1024;
    default_action = NoAction();
  }
  table smac_v4 {
    key = { meta.bd : exact; }
    actions = { rewrite_v4; NoAction; }
    size = 256;
    default_action = NoAction();
  }
  table smac_v6 {
    key = { meta.bd : exact; }
    actions = { rewrite_v6; NoAction; }
    size = 256;
    default_action = NoAction();
  }
  table dmac {
    key = { meta.bd : exact; hdr.ethernet.dst_addr : exact; }
    actions = { set_out_port; NoAction; }
    size = 4096;
    default_action = NoAction();
  }
|src}

let base_apply_prefix =
  {src|
    port_map.apply();
    bridge_vrf.apply();
    if (hdr.ipv4.isValid()) { routable_v4.apply(); }
    else { if (hdr.ipv6.isValid()) { routable_v6.apply(); } }
    if (meta.l3_type == 4) { ipv4_lpm.apply(); }
    if (meta.l3_type == 6) { ipv6_lpm.apply(); }
    if (meta.l3_type == 4) { ipv4_host.apply(); }
    if (meta.l3_type == 6) { ipv6_host.apply(); }
|src}

let base_apply_suffix =
  {src|
    if (meta.l3_type == 4) { smac_v4.apply(); }
    if (meta.l3_type == 6) { smac_v6.apply(); }
    dmac.apply();
|src}

(* Assemble a complete P4 program. *)
let assemble ?parser_override ~extra_headers ~extra_instances ~extra_parser_states
    ~extra_meta ~extra_actions ~extra_tables ~apply_mid ~apply_pre () =
  String.concat "\n"
    [
      "#include <core.p4>";
      "#include <v1model.p4>";
      headers_and_parser;
      extra_headers;
      base_metadata;
      (if extra_meta = "" then "" else extra_meta);
      (if extra_instances = "" then base_instances
       else
         (* splice extra instances into the headers struct *)
         String.concat "\n"
           [
             "struct headers {";
             "  ethernet_t ethernet;";
             "  ipv4_t ipv4;";
             "  ipv6_t ipv6;";
             extra_instances;
             "}";
           ]);
      (match parser_override with
      | Some p -> p
      | None ->
        if extra_parser_states = "" then base_parser
        else
          (* extend the parser: replace the final "}" with new states *)
          String.sub base_parser 0 (String.rindex base_parser '}')
          ^ extra_parser_states ^ "\n}");
      "control MyIngress(inout headers hdr, inout metadata meta) {";
      base_actions;
      extra_actions;
      base_tables;
      extra_tables;
      "  apply {";
      apply_pre;
      base_apply_prefix;
      apply_mid;
      "    if (meta.nexthop != 0) { nexthop.apply(); }";
      base_apply_suffix;
      "  }";
      "}";
      "V1Switch(MyParser(), MyIngress()) main;";
    ]

(* The plain base design. *)
let source =
  assemble ~extra_headers:"" ~extra_instances:"" ~extra_parser_states:"" ~extra_meta:""
    ~extra_actions:"" ~extra_tables:"" ~apply_mid:"" ~apply_pre:" " ()

(* C1: ECMP under the P4 flow — the whole design recompiles, with the
   nexthop stage replaced by the ECMP tables. *)
let source_with_ecmp =
  String.concat "\n"
    [
      "#include <core.p4>";
      headers_and_parser;
      base_metadata;
      base_instances;
      base_parser;
      "control MyIngress(inout headers hdr, inout metadata meta) {";
      base_actions;
      base_tables;
      {src|
  table ecmp_ipv4 {
    key = { meta.nexthop : hash; hdr.ipv4.dst_addr : hash; }
    actions = { set_bd_dmac; NoAction; }
    size = 4096;
    default_action = NoAction();
  }
  table ecmp_ipv6 {
    key = { meta.nexthop : hash; hdr.ipv6.dst_addr : hash; }
    actions = { set_bd_dmac; NoAction; }
    size = 4096;
    default_action = NoAction();
  }
|src};
      "  apply {";
      base_apply_prefix;
      {src|
    if (hdr.ipv4.isValid() && meta.nexthop != 0) { ecmp_ipv4.apply(); }
    else { if (hdr.ipv6.isValid() && meta.nexthop != 0) { ecmp_ipv6.apply(); } }
|src};
      base_apply_suffix;
      "  }";
      "}";
      "V1Switch(MyParser(), MyIngress()) main;";
    ]

(* C2: SRv6 under the P4 flow: new header type, parser states, tables. *)
let srv6_parser =
  {src|
parser MyParser(packet_in packet, out headers hdr, inout metadata meta) {
  state start {
    transition parse_ethernet;
  }
  state parse_ethernet {
    packet.extract(hdr.ethernet);
    transition select(hdr.ethernet.ethertype) {
      0x0800 : parse_ipv4;
      0x86dd : parse_ipv6;
      default : accept;
    }
  }
  state parse_ipv4 {
    packet.extract(hdr.ipv4);
    transition accept;
  }
  state parse_ipv6 {
    packet.extract(hdr.ipv6);
    transition select(hdr.ipv6.next_header) {
      43 : parse_srh;
      default : accept;
    }
  }
  state parse_srh {
    packet.extract(hdr.srh);
    transition accept;
  }
}
|src}

let source_with_srv6 =
  assemble ~parser_override:srv6_parser
    ~extra_headers:
      {src|
header srh_t {
  bit<8> next_header;
  bit<8> hdr_ext_len;
  bit<8> routing_type;
  bit<8> segments_left;
  bit<8> last_entry;
  bit<8> flags;
  bit<16> tag;
  bit<128> seg0;
  bit<128> seg1;
  bit<128> seg2;
}
|src}
    ~extra_instances:"  srh_t srh;"
    ~extra_parser_states:"" (* select extension handled below via apply guard *)
    ~extra_meta:""
    ~extra_actions:
      {src|
  action srv6_end_to0() {
    hdr.srh.segments_left = 0;
    hdr.ipv6.dst_addr = hdr.srh.seg0;
  }
  action srv6_end_to1() {
    hdr.srh.segments_left = 1;
    hdr.ipv6.dst_addr = hdr.srh.seg1;
  }
|src}
    ~extra_tables:
      {src|
  table local_sid {
    key = { hdr.ipv6.dst_addr : exact; hdr.srh.segments_left : exact; }
    actions = { srv6_end_to0; srv6_end_to1; set_nexthop; }
    size = 1024;
    default_action = NoAction();
  }
  table end_transit {
    key = { hdr.ipv6.dst_addr : lpm; }
    actions = { set_nexthop; NoAction; }
    size = 1024;
    default_action = NoAction();
  }
|src}
    ~apply_mid:"" (* SRv6 processing sits before the FIB *)
    ~apply_pre:
      {src|
    if (hdr.srh.isValid() && hdr.srh.segments_left != 0) { local_sid.apply(); }
    else { if (hdr.srh.isValid()) { end_transit.apply(); } }
|src}
    ()

(* C3: flow probe under the P4 flow. *)
let source_with_probe =
  assemble ~extra_headers:"" ~extra_instances:"" ~extra_parser_states:"" ~extra_meta:""
    ~extra_actions:
      {src|
  action probe_mark(bit<32> threshold) { mark_exceed(threshold, 1); }
|src}
    ~extra_tables:
      {src|
  table flow_probe {
    key = { hdr.ipv4.src_addr : exact; hdr.ipv4.dst_addr : exact; }
    actions = { probe_mark; NoAction; }
    size = 1024;
    default_action = NoAction();
  }
|src}
    ~apply_mid:""
    ~apply_pre:
      {src|
    if (hdr.ipv4.isValid()) { flow_probe.apply(); }
|src}
    ()
