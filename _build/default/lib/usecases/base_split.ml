(* The base design with a real ingress/egress split.

   The paper's FPGA prototypes omit the TM "for simplicity", so the main
   [Base_l23] design maps everything to ingress. This variant splits the
   same ten logical stages across the TM — nexthop resolution, rewrite and
   DMAC lookup move to the egress pipe — exercising the elastic pipeline's
   selector (ingress TSPs on the left, egress TSPs on the right, bypassed
   TSPs between) and the traffic manager on the full forwarding path.

   Generated from [Base_l23.source] by moving the tail stages into a
   [control rP4_Egress] block, so the two designs cannot drift apart. *)

let find_sub s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = if i + n > m then None else if String.sub s i n = sub then Some i else go (i + 1) in
  go 0

let source =
  let src = Base_l23.source in
  let marker = "  stage nexthop {" in
  let funcs_marker = "user_funcs {" in
  match (find_sub src marker, find_sub src funcs_marker) with
  | Some split_at, Some funcs_at ->
    (* the ingress control runs up to the nexthop stage; find the end of
       the rP4_Ingress block (the "}" just before user_funcs) *)
    let before = String.sub src 0 split_at in
    let tail = String.sub src split_at (funcs_at - split_at) in
    (* tail = "  stage nexthop { ... }\n  stage l2_l3_rewrite {...}\n  stage dmac {...}\n}\n\n" *)
    let tail_end =
      match find_sub tail "\n}" with
      | Some _ ->
        (* last "}" closes rP4_Ingress; strip it *)
        let i = String.rindex tail '}' in
        String.sub tail 0 (String.rindex_from tail (i - 1) '}' + 1)
      | None -> tail
    in
    let funcs =
      {src|
user_funcs {
  func l2_forwarding { port_map bridge_vrf dmac }
  func l3_ipv4 { l2_l3_decide ipv4_lpm ipv4_host nexthop l2_l3_rewrite }
  func l3_ipv6 { ipv6_lpm ipv6_host }
  ingress_entry : port_map;
  egress_entry : nexthop;
}
|src}
    in
    String.concat ""
      [
        before;
        "}\n\ncontrol rP4_Egress {\n";
        tail_end;
        "\n}\n\n";
        funcs;
      ]
  | _ -> invalid_arg "Base_split: marker not found in base source"

(* Same population and flows as the unsplit base design. *)
let population = Base_l23.population
