lib/usecases/p4_base.ml: String
