lib/usecases/flowprobe.ml: Base_l23 Net Printf
