lib/usecases/ecmp.ml: String
