lib/usecases/base_split.ml: Base_l23 String
