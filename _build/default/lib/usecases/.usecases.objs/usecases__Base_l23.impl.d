lib/usecases/base_l23.ml: List Net Printf String
