lib/usecases/srv6.ml: Base_l23 Net Printf String
