(* The base design: simple L2/L3 forwarding (Sec. 4.2, Fig. 4).

   Ten logical stages A..J map onto seven TSPs:

     A port_map        get interface index via the port mapping table
     B bridge_vrf      bind the bridge domain and the VRF
     C l2_l3_decide    determine L2 or L3 forwarding (router MAC lookup)
     D ipv4_lpm        IPv4 FIB, longest prefix      (merged with E)
     E ipv6_lpm        IPv6 FIB, longest prefix
     F ipv4_host       IPv4 FIB, host routes         (merged with G)
     G ipv6_host       IPv6 FIB, host routes
     H nexthop         bind egress bridge and set DMAC
     I l2_l3_rewrite   decrement TTL / hop limit, set SMAC (merged with J)
     J dmac            retrieve the egress interface via the DMAC table

   The LPM stages run before the host stages so that a host-route hit
   overwrites the LPM result (most-specific wins). D/E and F/G carry
   provably-exclusive guards (meta.l3_type == 4 vs == 6), which is what
   lets rp4bc merge each pair into a single TSP. *)

let router_mac = "02:00:00:00:00:aa"

let source =
  {src|
headers {
  header ethernet {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ethertype;
    implicit parser (ethertype) {
      0x0800 : ipv4;
      0x86dd : ipv6;
    }
  }
  header ipv4 {
    bit<4> version;
    bit<4> ihl;
    bit<8> tos;
    bit<16> total_len;
    bit<16> ident;
    bit<16> flags_frag;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
    implicit parser (protocol) { }
  }
  header ipv6 {
    bit<4> version;
    bit<8> traffic_class;
    bit<20> flow_label;
    bit<16> payload_len;
    bit<8> next_header;
    bit<8> hop_limit;
    bit<128> src_addr;
    bit<128> dst_addr;
    implicit parser (next_header) { }
  }
}

structs {
  struct metadata_t {
    bit<16> ifindex;
    bit<16> bd;
    bit<16> vrf;
    bit<8> l3_type;
    bit<16> nexthop;
  } meta;
}

action set_ifindex(bit<16> ifindex) { meta.ifindex = ifindex; }
action set_bd_vrf(bit<16> bd, bit<16> vrf) {
  meta.bd = bd;
  meta.vrf = vrf;
}
action set_l3_v4() { meta.l3_type = 4; }
action set_l3_v6() { meta.l3_type = 6; }
action set_l2() { meta.l3_type = 0; }
action set_nexthop(bit<16> nh) { meta.nexthop = nh; }
action set_bd_dmac(bit<16> bd, bit<48> dmac) {
  meta.bd = bd;
  ethernet.dst_addr = dmac;
}
action rewrite_v4(bit<48> smac) {
  ipv4.ttl = ipv4.ttl - 1;
  ethernet.src_addr = smac;
}
action rewrite_v6(bit<48> smac) {
  ipv6.hop_limit = ipv6.hop_limit - 1;
  ethernet.src_addr = smac;
}
action set_out_port(bit<16> port) { meta.out_port = port; }

table port_map {
  key = { meta.in_port : exact; }
  size = 64;
}
table bridge_vrf {
  key = { meta.ifindex : exact; }
  size = 256;
}
table routable_v4 {
  key = { meta.vrf : exact; ethernet.dst_addr : exact; }
  size = 128;
}
table routable_v6 {
  key = { meta.vrf : exact; ethernet.dst_addr : exact; }
  size = 128;
}
table ipv4_lpm {
  key = { meta.vrf : exact; ipv4.dst_addr : lpm; }
  size = 4096;
}
table ipv6_lpm {
  key = { meta.vrf : exact; ipv6.dst_addr : lpm; }
  size = 2048;
}
table ipv4_host {
  key = { meta.vrf : exact; ipv4.dst_addr : exact; }
  size = 4096;
}
table ipv6_host {
  key = { meta.vrf : exact; ipv6.dst_addr : exact; }
  size = 2048;
}
table nexthop {
  key = { meta.nexthop : exact; }
  size = 1024;
}
table smac_v4 {
  key = { meta.bd : exact; }
  size = 256;
}
table smac_v6 {
  key = { meta.bd : exact; }
  size = 256;
}
table dmac {
  key = { meta.bd : exact; ethernet.dst_addr : exact; }
  size = 4096;
}

control rP4_Ingress {
  stage port_map {
    parser { };
    matcher { port_map.apply(); };
    executor {
      1 : set_ifindex;
      default : NoAction;
    }
  }
  stage bridge_vrf {
    parser { };
    matcher { bridge_vrf.apply(); };
    executor {
      1 : set_bd_vrf;
      default : NoAction;
    }
  }
  stage l2_l3_decide {
    parser { ethernet, ipv4, ipv6 };
    matcher {
      if (ipv4.isValid()) routable_v4.apply();
      else if (ipv6.isValid()) routable_v6.apply();
      else;
    };
    executor {
      1 : set_l3_v4;
      2 : set_l3_v6;
      default : set_l2;
    }
  }
  stage ipv4_lpm {
    parser { ipv4 };
    matcher { if (meta.l3_type == 4) ipv4_lpm.apply(); else; };
    executor {
      1 : set_nexthop;
      default : NoAction;
    }
  }
  stage ipv6_lpm {
    parser { ipv6 };
    matcher { if (meta.l3_type == 6) ipv6_lpm.apply(); else; };
    executor {
      1 : set_nexthop;
      default : NoAction;
    }
  }
  stage ipv4_host {
    parser { ipv4 };
    matcher { if (meta.l3_type == 4) ipv4_host.apply(); else; };
    executor {
      1 : set_nexthop;
      default : NoAction;
    }
  }
  stage ipv6_host {
    parser { ipv6 };
    matcher { if (meta.l3_type == 6) ipv6_host.apply(); else; };
    executor {
      1 : set_nexthop;
      default : NoAction;
    }
  }
  stage nexthop {
    parser { };
    matcher { if (meta.nexthop != 0) nexthop.apply(); else; };
    executor {
      1 : set_bd_dmac;
      default : NoAction;
    }
  }
  stage l2_l3_rewrite {
    parser { ipv4, ipv6 };
    matcher {
      if (meta.l3_type == 4) smac_v4.apply();
      else if (meta.l3_type == 6) smac_v6.apply();
      else;
    };
    executor {
      1 : rewrite_v4;
      2 : rewrite_v6;
      default : NoAction;
    }
  }
  stage dmac {
    parser { ethernet };
    matcher { dmac.apply(); };
    executor {
      1 : set_out_port;
      default : NoAction;
    }
  }
}

user_funcs {
  func l2_forwarding { port_map bridge_vrf dmac }
  func l3_ipv4 { l2_l3_decide ipv4_lpm ipv4_host nexthop l2_l3_rewrite }
  func l3_ipv6 { ipv6_lpm ipv6_host }
  ingress_entry : port_map;
}
|src}

(* Population: the runtime entries the examples and tests install after
   loading the base design. Routed traffic targets 10.1.0.0/16 (nexthop 1),
   the host route 10.1.0.1 (nexthop 2) and 2001:db8::/32 (nexthop 3);
   bridged traffic switches on the DMAC table in bridge domain 1. *)
let population =
  String.concat "\n"
    (List.init 8 (fun p ->
         Printf.sprintf "table_add port_map set_ifindex %d => %d" p (100 + p))
    @ List.init 8 (fun p ->
          Printf.sprintf "table_add bridge_vrf set_bd_vrf %d => 1 10" (100 + p))
    @ [
        Printf.sprintf "table_add routable_v4 set_l3_v4 10 %s =>" router_mac;
        Printf.sprintf "table_add routable_v6 set_l3_v6 10 %s =>" router_mac;
        "table_add ipv4_lpm set_nexthop 10 10.1.0.0/16 => 1";
        "table_add ipv4_host set_nexthop 10 10.1.0.1 => 2";
        "table_add ipv6_lpm set_nexthop 10 2001:db8::/32 => 3";
        "table_add nexthop set_bd_dmac 1 => 2 02:00:00:00:00:b1";
        "table_add nexthop set_bd_dmac 2 => 2 02:00:00:00:00:b2";
        "table_add nexthop set_bd_dmac 3 => 3 02:00:00:00:00:b3";
        Printf.sprintf "table_add smac_v4 rewrite_v4 2 => %s" router_mac;
        Printf.sprintf "table_add smac_v6 rewrite_v6 3 => %s" router_mac;
        "table_add dmac set_out_port 2 02:00:00:00:00:b1 => 1";
        "table_add dmac set_out_port 2 02:00:00:00:00:b2 => 2";
        "table_add dmac set_out_port 3 02:00:00:00:00:b3 => 3";
        "table_add dmac set_out_port 1 02:00:00:00:07:d1 => 4";
      ])

(* Canonical test flows matching the population above. *)
let routed_v4_flow =
  Net.Flowgen.make_flow
    ~dst_mac:(Net.Addr.Mac.of_string_exn router_mac)
    ~dst_ip4:(Net.Addr.Ipv4.of_string_exn "10.1.0.99")
    ()

let host_route_v4_flow =
  Net.Flowgen.make_flow
    ~dst_mac:(Net.Addr.Mac.of_string_exn router_mac)
    ~dst_ip4:(Net.Addr.Ipv4.of_string_exn "10.1.0.1")
    ()

let routed_v6_flow =
  Net.Flowgen.make_flow
    ~dst_mac:(Net.Addr.Mac.of_string_exn router_mac)
    ~dst_ip6:(Net.Addr.Ipv6.of_string_exn "2001:db8::42")
    ()

let bridged_flow = Net.Flowgen.make_flow ~dst_mac:(Net.Addr.Mac.of_index 2001) ()

(* Expected egress ports for the canonical flows. *)
let expected_port_routed_v4 = 1
let expected_port_host_v4 = 2
let expected_port_routed_v6 = 3
let expected_port_bridged = 4
