lib/ipsa/tm.mli:
