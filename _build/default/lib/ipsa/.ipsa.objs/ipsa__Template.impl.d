lib/ipsa/template.ml: Int64 List Option Prelude Rp4 String Table
