lib/ipsa/pipeline.ml: Array Context List Printf String Tsp
