lib/ipsa/parse_engine.ml: Context List Logs Net
