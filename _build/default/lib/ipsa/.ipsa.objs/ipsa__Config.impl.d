lib/ipsa/config.ml: Int64 List Net Option Pipeline Prelude String Template
