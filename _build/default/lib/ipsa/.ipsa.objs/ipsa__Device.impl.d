lib/ipsa/device.ml: Array Config Context Cycles Hashtbl List Logs Mem Net Pipeline Printf Queue Table Template Tm Tsp
