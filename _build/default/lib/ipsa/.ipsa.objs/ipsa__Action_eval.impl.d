lib/ipsa/action_eval.ml: Context Format List Net Rp4
