lib/ipsa/tm.ml: Queue
