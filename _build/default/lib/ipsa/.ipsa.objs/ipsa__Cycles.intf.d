lib/ipsa/cycles.mli:
