lib/ipsa/cycles.ml:
