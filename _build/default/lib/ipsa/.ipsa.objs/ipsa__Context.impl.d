lib/ipsa/context.ml: Net
