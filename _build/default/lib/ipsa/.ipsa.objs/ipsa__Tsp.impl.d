lib/ipsa/tsp.ml: Action_eval Context Cycles List Net Parse_engine Printf Rp4 String Table Template
