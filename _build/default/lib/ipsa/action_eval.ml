(* Interpreter for rP4 expressions, conditions and action bodies.

   Shared by the IPSA TSP executor and the PISA baseline stage engine so
   both architectures have identical packet-transformation semantics and
   the evaluation differences come only from the architecture, never from
   divergent interpreters. *)

exception Runtime_error of string

let runtime_error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type env = {
  ctx : Context.t;
  params : (string * Net.Bits.t) list; (* action arguments *)
}

let read_field (ctx : Context.t) = function
  | Rp4.Ast.Meta_field f -> Net.Meta.get ctx.Context.meta f
  | Rp4.Ast.Hdr_field (h, f) -> (
    match Net.Pmap.get_field ctx.Context.pkt ctx.Context.pmap ~hdr:h ~field:f with
    | Some v -> v
    | None -> runtime_error "read of invalid header field %s.%s" h f)

(* Expressions evaluate to [Bits.t]; widths follow the left operand for
   binary operations, and unsized constants adopt the width demanded by
   their context (64 bits when free-standing). *)
let rec eval_expr ?(want = 64) env (e : Rp4.Ast.expr) : Net.Bits.t =
  match e with
  | Rp4.Ast.E_const (v, Some w) -> Net.Bits.of_int64 ~width:w v
  | Rp4.Ast.E_const (v, None) -> Net.Bits.of_int64 ~width:want v
  | Rp4.Ast.E_field fr -> read_field env.ctx fr
  | Rp4.Ast.E_param p -> (
    match List.assoc_opt p env.params with
    | Some v -> v
    | None -> runtime_error "unbound action parameter %s" p)
  | Rp4.Ast.E_binop (op, a, b) ->
    let va = eval_expr ~want env a in
    let w = Net.Bits.width va in
    let vb = Net.Bits.resize (eval_expr ~want:w env b) w in
    (match op with
    | Rp4.Ast.Add -> Net.Bits.add va vb
    | Rp4.Ast.Sub -> Net.Bits.sub va vb
    | Rp4.Ast.Band -> Net.Bits.logand va vb
    | Rp4.Ast.Bor -> Net.Bits.logor va vb
    | Rp4.Ast.Bxor -> Net.Bits.logxor va vb)

let rec eval_cond env (c : Rp4.Ast.cond) : bool =
  match c with
  | Rp4.Ast.C_true -> true
  | Rp4.Ast.C_valid h -> Net.Pmap.is_valid env.ctx.Context.pmap h
  | Rp4.Ast.C_not c -> not (eval_cond env c)
  | Rp4.Ast.C_and (a, b) -> eval_cond env a && eval_cond env b
  | Rp4.Ast.C_or (a, b) -> eval_cond env a || eval_cond env b
  | Rp4.Ast.C_rel (op, a, b) ->
    let va = eval_expr env a in
    let w = Net.Bits.width va in
    let vb = Net.Bits.resize (eval_expr ~want:w env b) w in
    let cmp = Net.Bits.compare va vb in
    (match op with
    | Rp4.Ast.Eq -> cmp = 0
    | Rp4.Ast.Neq -> cmp <> 0
    | Rp4.Ast.Lt -> cmp < 0
    | Rp4.Ast.Gt -> cmp > 0
    | Rp4.Ast.Le -> cmp <= 0
    | Rp4.Ast.Ge -> cmp >= 0)

let write_field (ctx : Context.t) fr v =
  match fr with
  | Rp4.Ast.Meta_field f -> Net.Meta.set ctx.Context.meta f v
  | Rp4.Ast.Hdr_field (h, f) ->
    Net.Pmap.set_field ctx.Context.pkt ctx.Context.pmap ~hdr:h ~field:f v

let dest_width (ctx : Context.t) = function
  | Rp4.Ast.Meta_field f -> (
    match Net.Meta.width_of ctx.Context.meta f with Some w -> w | None -> 64)
  | Rp4.Ast.Hdr_field (h, f) -> (
    match Net.Pmap.find ctx.Context.pmap h with
    | Some inst -> (
      match Net.Hdrdef.field_offset inst.Net.Pmap.def f with
      | Some (_, w) -> w
      | None -> 64)
    | None -> 64)

let exec_stmt env (s : Rp4.Ast.stmt) =
  let ctx = env.ctx in
  match s with
  | Rp4.Ast.S_noop -> ()
  | Rp4.Ast.S_drop -> Net.Meta.set_int ctx.Context.meta "drop" 1
  | Rp4.Ast.S_mark e ->
    Net.Meta.set ctx.Context.meta "mark" (eval_expr ~want:8 env e)
  | Rp4.Ast.S_assign (fr, e) ->
    let w = dest_width ctx fr in
    write_field ctx fr (Net.Bits.resize (eval_expr ~want:w env e) w)
  | Rp4.Ast.S_set_valid _ ->
    () (* instance becomes valid when parsed; explicit insertion is a
          controller-level operation in this model *)
  | Rp4.Ast.S_set_invalid h -> Net.Pmap.invalidate ctx.Context.pmap h
  | Rp4.Ast.S_mark_exceed (th, v) ->
    let hits =
      match ctx.Context.last_lookup with Some lr -> lr.Context.lr_hits | None -> 0
    in
    let threshold = Net.Bits.to_int (eval_expr ~want:32 env th) in
    if hits > threshold then
      Net.Meta.set ctx.Context.meta "mark" (eval_expr ~want:8 env v)

(* Run a full action with arguments bound positionally to parameters. *)
let run_action ctx (a : Rp4.Ast.action_decl) (args : Net.Bits.t list) =
  let params =
    try
      List.map2
        (fun (name, w) v -> (name, Net.Bits.resize v w))
        a.Rp4.Ast.ad_params args
    with Invalid_argument _ ->
      runtime_error "action %s expects %d args, got %d" a.Rp4.Ast.ad_name
        (List.length a.Rp4.Ast.ad_params) (List.length args)
  in
  let env = { ctx; params } in
  List.iter (exec_stmt env) a.Rp4.Ast.ad_body
