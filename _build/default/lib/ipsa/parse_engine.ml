(* Distributed on-demand parsing (Sec. 2.1 of the paper).

   IPSA has no front parser: when a stage's parser module names a header
   instance, the engine walks the header-linkage chain from the start of
   the packet, extracting headers *lazily* and recording them in the
   packet's parsed-header map so later stages never re-parse. A requested
   header that is not on the packet's parse path simply stays invalid —
   matcher conditions ([isValid]) observe that. *)

let log = Logs.Src.create "ipsa.parse" ~doc:"IPSA distributed parser"

module Log = (val Logs.src_log log : Logs.LOG)

(* Selector value of header instance [name] already parsed at [bit_off]. *)
let read_selector pkt (def : Net.Hdrdef.t) ~bit_off =
  let parts =
    List.map
      (fun sel ->
        let off, width = Net.Hdrdef.field_offset_exn def sel in
        Net.Packet.get_bits pkt ~off:(bit_off + off) ~width)
      def.Net.Hdrdef.sel_fields
  in
  Net.Bits.concat_list parts

(* Parse forward along the chain until [target] is located or the chain
   ends. Every header discovered on the way is recorded. Returns whether
   [target] is now valid. [budget] bounds work on malformed linkage loops. *)
let ensure_parsed ?(budget = 32) (ctx : Context.t) (registry : Net.Hdrdef.registry) target
    =
  if Net.Pmap.is_valid ctx.Context.pmap target then true
  else begin
    (* Resume from the deepest already-parsed header, or packet start. *)
    let deepest =
      List.fold_left
        (fun acc name ->
          match Net.Pmap.find ctx.Context.pmap name with
          | Some inst -> (
            match acc with
            | Some (_, best) when best.Net.Pmap.bit_off >= inst.Net.Pmap.bit_off -> acc
            | _ -> Some (name, inst))
          | None -> acc)
        None
        (Net.Pmap.names ctx.Context.pmap)
    in
    let rec walk name bit_off steps =
      if steps <= 0 then false
      else
        match Net.Hdrdef.find registry name with
        | None -> false
        | Some def ->
          let width = def.Net.Hdrdef.width in
          if bit_off + width > 8 * Net.Packet.length ctx.Context.pkt then false
          else begin
            ctx.Context.parse_attempts <- ctx.Context.parse_attempts + 1;
            if not (Net.Pmap.is_valid ctx.Context.pmap name) then
              Net.Pmap.add ctx.Context.pmap ~def ~bit_off;
            if name = target then true
            else begin
              match def.Net.Hdrdef.sel_fields with
              | [] -> false (* leaf header; chain ends *)
              | _ -> (
                let tag = read_selector ctx.Context.pkt def ~bit_off in
                match Net.Hdrdef.next_header registry ~pre:name ~tag with
                | Some next -> walk next (bit_off + width) (steps - 1)
                | None -> false)
            end
          end
    in
    match deepest with
    | Some (name, inst) when name <> target -> (
      (* Continue the chain from after the deepest parsed header. *)
      match Net.Hdrdef.find registry name with
      | Some def when def.Net.Hdrdef.sel_fields <> [] -> (
        let tag = read_selector ctx.Context.pkt def ~bit_off:inst.Net.Pmap.bit_off in
        match Net.Hdrdef.next_header registry ~pre:name ~tag with
        | Some next ->
          walk next (inst.Net.Pmap.bit_off + def.Net.Hdrdef.width) budget
        | None -> false)
      | _ -> false)
    | _ -> (
      match registry.Net.Hdrdef.first with
      | Some first -> walk first 0 budget
      | None -> false)
  end
