(* Traffic manager separating ingress from egress in the elastic pipeline.

   Modeled as a bounded FIFO: packets finishing ingress enqueue here and
   egress drains it. During an in-situ update the pipeline is drained
   through back-pressure — the TM (and the CM input buffer) is where
   packets wait, which is why IPSA updates lose no packets while PISA
   reloads do. *)

type 'a t = {
  queue : 'a Queue.t;
  capacity : int;
  mutable enqueued : int;
  mutable dropped : int; (* overflow drops *)
  mutable high_watermark : int;
}

let create ?(capacity = 4096) () =
  { queue = Queue.create (); capacity; enqueued = 0; dropped = 0; high_watermark = 0 }

let length t = Queue.length t.queue

let enqueue t x =
  if Queue.length t.queue >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    Queue.add x t.queue;
    t.enqueued <- t.enqueued + 1;
    t.high_watermark <- max t.high_watermark (Queue.length t.queue);
    true
  end

let dequeue t = Queue.take_opt t.queue

let drain t f =
  let n = Queue.length t.queue in
  while not (Queue.is_empty t.queue) do
    f (Queue.take t.queue)
  done;
  n

let stats t = (t.enqueued, t.dropped, t.high_watermark)
