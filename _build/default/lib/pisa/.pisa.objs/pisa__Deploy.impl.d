lib/pisa/deploy.ml: Array Controller Device Hashtbl Ipsa List Option Rp4 Rp4bc
