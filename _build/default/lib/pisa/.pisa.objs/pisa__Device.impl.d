lib/pisa/device.ml: Array Hashtbl Ipsa List Net Printf Queue Table
