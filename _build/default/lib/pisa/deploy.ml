(* Deploying a compiled design onto the PISA baseline.

   PISA consumes the same compiled design rp4bc produces (the match-action
   semantics are architecture independent); what changes is the delivery:
   the *whole* design is synthesised into one monolithic image and swapped
   in, instead of patching individual TSPs. [full_image] builds that image
   from a design; [install] performs the swap (losing all table state). *)

let templates_of_design (design : Rp4bc.Design.t) : Ipsa.Template.t option array =
  let layout = design.Rp4bc.Design.layout in
  Array.init layout.Rp4bc.Layout.ntsps (fun i ->
      Option.map
        (fun g -> Rp4bc.Compile.template_of_group design.Rp4bc.Design.env g)
        (Rp4bc.Layout.group_at layout i))

let headers_of_design (design : Rp4bc.Design.t) =
  List.map Rp4bc.Compile.hdrdef_of_decl design.Rp4bc.Design.prog.Rp4.Ast.headers

let meta_of_design (design : Rp4bc.Design.t) =
  Hashtbl.fold
    (fun n w acc -> (n, w) :: acc)
    design.Rp4bc.Design.env.Rp4.Semantic.meta_widths []

(* Full-image install: wipes the device and loads the design. Returns the
   reload report; the caller is responsible for repopulating *all* tables
   afterwards (the cost Table 1's discussion points out). *)
let install (device : Device.t) (design : Rp4bc.Design.t) :
    (Device.reload_report, string) result =
  let first =
    match design.Rp4bc.Design.prog.Rp4.Ast.headers with
    | h :: _ -> Some h.Rp4.Ast.hd_name
    | [] -> None
  in
  Device.reload device
    ~registry_headers:(headers_of_design design)
    ~first_header:first
    ~links:(Rp4bc.Compile.links_of_prog design.Rp4bc.Design.prog)
    ~meta:(meta_of_design design)
    ~templates:(templates_of_design design)

(* Replay a population script (the same text the ipbm controller runs)
   against the PISA device's local tables. *)
let populate (device : Device.t) (design : Rp4bc.Design.t) script :
    (int, string) result =
  let apis = Controller.Runtime.of_design design in
  let cmds = Controller.Command.parse_script script in
  let rec go n = function
    | [] ->
      Device.note_repopulated device n;
      Ok n
    | Controller.Command.Table_add { table; action; keys; args } :: rest -> (
      match
        Controller.Runtime.table_add_with
          ~lookup:(Device.find_table device)
          ~apis ~table ~action ~keys ~args
      with
      | Ok () -> go (n + 1) rest
      | Error e -> Error e)
    | _ :: rest -> go n rest
  in
  go 0 cmds
