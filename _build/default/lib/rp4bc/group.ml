(* Stage merging: pack consecutive independent logical stages into TSP
   groups (Sec. 3.1: "One TSP can host multiple independent stages after
   compiling").

   Greedy scan over the topologically-ordered stage list: a stage joins
   the current group when it is pairwise independent of every member and
   the group stays within the TSP's capacity (stage count and table
   count); otherwise it opens a new group. *)

type t = {
  g_stages : string list; (* in execution order *)
  g_tables : string list;
}

let key t = String.concat "+" t.g_stages

let equal a b = a.g_stages = b.g_stages

type limits = { max_stages : int; max_tables : int }

let default_limits = { max_stages = 4; max_tables = 4 }

let merge ?(limits = default_limits) env (ordered : string list) : t list =
  let summary name =
    match Rp4.Ast.find_stage env.Rp4.Semantic.prog name with
    | Some s -> Depgraph.summarize env s
    | None -> invalid_arg ("Group.merge: unknown stage " ^ name)
  in
  let summaries = List.map summary ordered in
  let close group = { g_stages = List.rev group.g_stages; g_tables = List.rev group.g_tables } in
  let rec go acc current members = function
    | [] -> List.rev (if current.g_stages = [] then acc else close current :: acc)
    | ss :: rest ->
      let tables = Depgraph.SS.elements ss.Depgraph.ss_tables in
      let fits =
        List.length current.g_stages < limits.max_stages
        && List.length current.g_tables + List.length tables <= limits.max_tables
        && List.for_all (fun m -> Depgraph.independent env m ss) members
      in
      if current.g_stages <> [] && fits then
        go acc
          {
            g_stages = ss.Depgraph.ss_name :: current.g_stages;
            g_tables = List.rev_append tables current.g_tables;
          }
          (ss :: members) rest
      else begin
        let acc = if current.g_stages = [] then acc else close current :: acc in
        go acc
          { g_stages = [ ss.Depgraph.ss_name ]; g_tables = tables }
          [ ss ] rest
      end
  in
  go [] { g_stages = []; g_tables = [] } [] summaries
