lib/rp4bc/design.ml: Array Graph Group Ipsa Layout List Printf Rp4 String
