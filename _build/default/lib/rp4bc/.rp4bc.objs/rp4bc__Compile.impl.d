lib/rp4bc/compile.ml: Alloc Array Design Graph Group Hashtbl Int64 Ipsa Layout List Mem Net Option Printf Rp4 String
