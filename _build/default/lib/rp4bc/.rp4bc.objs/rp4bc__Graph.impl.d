lib/rp4bc/graph.ml: Hashtbl List String
