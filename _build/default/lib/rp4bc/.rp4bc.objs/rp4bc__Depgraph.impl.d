lib/rp4bc/depgraph.ml: Int64 List Rp4 Set String
