lib/rp4bc/layout.ml: Array Group Ipsa List Option Printf
