lib/rp4bc/group.ml: Depgraph List Rp4 String
