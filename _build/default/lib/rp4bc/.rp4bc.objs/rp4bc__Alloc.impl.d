lib/rp4bc/alloc.ml: Array List Mem Printf Solver String
