lib/rp4bc/graph.mli:
