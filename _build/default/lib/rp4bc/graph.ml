(* Stage graph: the logical control flow between pipeline stages.

   A design's stages form a DAG rooted at the pipe entry; the controller's
   [add_link]/[del_link] commands (Fig. 5(b)) edit the edges, and function
   deletion is simply edge removal — stages that become unreachable are
   recycled along with their tables. The back-end compiler linearises the
   DAG (topological order) onto the physical TSP chain; stage guards make
   off-path stages no-ops, so linearisation preserves semantics. *)

type t = {
  mutable edges : (string * string) list;
  mutable entry : string option;
}

let create ?entry () = { edges = []; entry }

let copy t = { edges = t.edges; entry = t.entry }

(* Build the initial graph of a pipe: consecutive stages are chained. *)
let of_chain stages =
  let rec chain = function
    | a :: (b :: _ as rest) -> (a, b) :: chain rest
    | _ -> []
  in
  {
    edges = chain stages;
    entry = (match stages with s :: _ -> Some s | [] -> None);
  }

let set_entry t s = t.entry <- Some s
let entry t = t.entry
let edges t = t.edges

let add_link t ~from_ ~to_ =
  if not (List.mem (from_, to_) t.edges) then t.edges <- t.edges @ [ (from_, to_) ]

let del_link t ~from_ ~to_ =
  t.edges <- List.filter (fun e -> e <> (from_, to_)) t.edges

let succs t s = List.filter_map (fun (a, b) -> if a = s then Some b else None) t.edges
let preds t s = List.filter_map (fun (a, b) -> if b = s then Some a else None) t.edges

(* Stages reachable from the entry. *)
let reachable t =
  match t.entry with
  | None -> []
  | Some entry ->
    let seen = Hashtbl.create 16 in
    let rec go s acc =
      if Hashtbl.mem seen s then acc
      else begin
        Hashtbl.add seen s ();
        List.fold_left (fun acc n -> go n acc) (s :: acc) (succs t s)
      end
    in
    List.rev (go entry [])

exception Cycle of string

(* Topological order of the reachable stages (entry first). Branch
   siblings end up adjacent, which is what the merge pass wants. *)
let topo_order t =
  let nodes = reachable t in
  let node_set = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace node_set n ()) nodes;
  let indeg = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let d =
        List.length (List.filter (fun p -> Hashtbl.mem node_set p) (preds t n))
      in
      Hashtbl.replace indeg n d)
    nodes;
  (* Kahn's algorithm preserving the original node order for stability. *)
  let order = ref [] in
  let remaining = ref nodes in
  let rec step () =
    match List.find_opt (fun n -> Hashtbl.find indeg n = 0) !remaining with
    | None -> if !remaining <> [] then raise (Cycle (String.concat "," !remaining))
    | Some n ->
      order := n :: !order;
      remaining := List.filter (( <> ) n) !remaining;
      List.iter
        (fun s ->
          if Hashtbl.mem node_set s then
            Hashtbl.replace indeg s (Hashtbl.find indeg s - 1))
        (succs t n);
      if !remaining <> [] then step ()
  in
  if nodes <> [] then step ();
  List.rev !order
