(* Physical layout: mapping TSP groups onto the elastic pipeline.

   Initial designs map ingress groups to the leftmost TSPs and egress
   groups to the rightmost (Sec. 2.3). Incremental updates re-align the
   new group sequence against the old assignment so that unchanged groups
   keep their TSP (no template rewrite); two algorithms are provided —
   the trade-off the paper mentions between "dynamic programming and
   greedy algorithm in terms of the function placement time and the
   degree of optimization":

   - [align_greedy]: first-fit left to right; fast, may rewrite more.
   - [align_dp]: sequence-alignment DP minimising the number of template
     rewrites; optimal, costs O(groups × TSPs) table cells. *)

type t = {
  ntsps : int;
  slots : Group.t option array; (* physical TSP -> group *)
  roles : Ipsa.Pipeline.role array;
}

let copy l = { l with slots = Array.copy l.slots; roles = Array.copy l.roles }

let empty ntsps =
  {
    ntsps;
    slots = Array.make ntsps None;
    roles = Array.make ntsps Ipsa.Pipeline.Bypass;
  }

let group_at l i = l.slots.(i)

let assignment l =
  Array.to_list l.slots
  |> List.mapi (fun i g -> (i, g))
  |> List.filter_map (fun (i, g) -> Option.map (fun g -> (i, g)) g)

let tsp_of_stage l stage =
  let rec find i =
    if i >= l.ntsps then None
    else
      match l.slots.(i) with
      | Some g when List.mem stage g.Group.g_stages -> Some i
      | _ -> find (i + 1)
  in
  find 0

let active_tsps l =
  Array.fold_left (fun n s -> if s = None then n else n + 1) 0 l.slots

(* ------------------------------------------------------------------ *)
(* Initial placement                                                   *)
(* ------------------------------------------------------------------ *)

let place_full ~ntsps ~(ingress : Group.t list) ~(egress : Group.t list) :
    (t, string) result =
  let ni = List.length ingress and ne = List.length egress in
  if ni + ne > ntsps then
    Error
      (Printf.sprintf "design needs %d ingress + %d egress TSPs, only %d available" ni
         ne ntsps)
  else begin
    let l = empty ntsps in
    List.iteri
      (fun i g ->
        l.slots.(i) <- Some g;
        l.roles.(i) <- Ipsa.Pipeline.Ingress)
      ingress;
    List.iteri
      (fun i g ->
        let idx = ntsps - ne + i in
        l.slots.(idx) <- Some g;
        l.roles.(idx) <- Ipsa.Pipeline.Egress)
      egress;
    Ok l
  end

(* ------------------------------------------------------------------ *)
(* Incremental re-alignment                                            *)
(* ------------------------------------------------------------------ *)

type align_stats = {
  rewrites : int; (* templates written *)
  kept : int; (* groups that kept their TSP untouched *)
  work : int; (* algorithm steps, a machine-independent placement-time proxy *)
}

(* Assign ordered [groups] to strictly increasing positions in
   [lo, hi); keeping a group on a TSP whose old content is identical
   costs 0, any other position costs 1 rewrite. Returns positions. *)

let align_greedy ~(old : Group.t option array) ~lo ~hi (groups : Group.t list) :
    (int list * align_stats, string) result =
  let work = ref 0 in
  let rec go cursor acc rewrites kept = function
    | [] -> Ok (List.rev acc, { rewrites; kept; work = !work })
    | g :: rest ->
      (* Scan for an identical old group at or right of the cursor. *)
      let rec scan i =
        incr work;
        if i >= hi then None
        else
          match old.(i) with
          | Some og when Group.equal og g -> Some i
          | _ -> scan (i + 1)
      in
      (match scan cursor with
      | Some i -> go (i + 1) (i :: acc) rewrites (kept + 1) rest
      | None ->
        if cursor >= hi then
          Error
            (Printf.sprintf "no TSP available for group %s in [%d,%d)" (Group.key g) lo
               hi)
        else begin
          (* First-fit: take the cursor slot (rewrite). But skip slots whose
             identical old group is needed by a later new group — greedy
             doesn't look ahead, which is exactly its weakness. *)
          go (cursor + 1) (cursor :: acc) (rewrites + 1) kept rest
        end)
  in
  go lo [] 0 0 groups

let align_dp ~(old : Group.t option array) ~lo ~hi (groups : Group.t list) :
    (int list * align_stats, string) result =
  let groups_arr = Array.of_list groups in
  let k = Array.length groups_arr in
  let n = hi - lo in
  if k > n then Error (Printf.sprintf "%d groups cannot fit in %d TSP slots" k n)
  else begin
    let work = ref 0 in
    let inf = max_int / 2 in
    (* cost.(i).(j): min rewrites assigning groups i.. to slots (lo+j).. *)
    let cost = Array.make_matrix (k + 1) (n + 1) inf in
    let take = Array.make_matrix (k + 1) (n + 1) false in
    for j = 0 to n do
      cost.(k).(j) <- 0
    done;
    for i = k - 1 downto 0 do
      for j = n - 1 downto 0 do
        incr work;
        (* Option A: place group i at slot lo+j. *)
        let here =
          let c =
            match old.(lo + j) with
            | Some og when Group.equal og groups_arr.(i) -> 0
            | _ -> 1
          in
          if cost.(i + 1).(j + 1) < inf then c + cost.(i + 1).(j + 1) else inf
        in
        (* Option B: skip slot lo+j. *)
        let skip = cost.(i).(j + 1) in
        if here <= skip then begin
          cost.(i).(j) <- here;
          take.(i).(j) <- true
        end
        else cost.(i).(j) <- skip
      done;
      (* can't start past the end *)
      ()
    done;
    if cost.(0).(0) >= inf then Error "dp alignment found no feasible placement"
    else begin
      let positions = ref [] in
      let i = ref 0 and j = ref 0 in
      while !i < k do
        if take.(!i).(!j) then begin
          positions := (lo + !j) :: !positions;
          incr i;
          incr j
        end
        else incr j
      done;
      let positions = List.rev !positions in
      let rewrites =
        List.fold_left2
          (fun acc g pos ->
            match old.(pos) with
            | Some og when Group.equal og g -> acc
            | _ -> acc + 1)
          0 groups positions
      in
      Ok
        ( positions,
          { rewrites; kept = k - rewrites; work = !work } )
    end
  end

type algo = Greedy | Dp

let align = function Greedy -> align_greedy | Dp -> align_dp

(* Re-layout a full design incrementally: align ingress groups into the
   left region and egress groups into the right region of the pipeline,
   then report which TSPs changed. *)
let place_incremental ~algo ~(old : t) ~(ingress : Group.t list)
    ~(egress : Group.t list) : (t * align_stats, string) result =
  let ne = List.length egress in
  (* Egress stays right-aligned: it occupies the last [ne] slots unless an
     old identical group sits elsewhere in the right region. *)
  let egress_lo = old.ntsps - ne in
  if egress_lo < 0 then Error "too many egress groups"
  else
    match align algo ~old:old.slots ~lo:0 ~hi:egress_lo ingress with
    | Error e -> Error e
    | Ok (ipos, istats) -> (
      match align algo ~old:old.slots ~lo:egress_lo ~hi:old.ntsps egress with
      | Error e -> Error e
      | Ok (epos, estats) ->
        let l = empty old.ntsps in
        List.iter2
          (fun g pos ->
            l.slots.(pos) <- Some g;
            l.roles.(pos) <- Ipsa.Pipeline.Ingress)
          ingress ipos;
        List.iter2
          (fun g pos ->
            l.slots.(pos) <- Some g;
            l.roles.(pos) <- Ipsa.Pipeline.Egress)
          egress epos;
        Ok
          ( l,
            {
              rewrites = istats.rewrites + estats.rewrites;
              kept = istats.kept + estats.kept;
              work = istats.work + estats.work;
            } ))

(* TSPs whose content differs between two layouts — these need a template
   write (or an unload when the new content is None). *)
let diff_tsps ~(old : t) ~(next : t) =
  let changed = ref [] in
  for i = old.ntsps - 1 downto 0 do
    let same =
      match (old.slots.(i), next.slots.(i)) with
      | None, None -> true
      | Some a, Some b -> Group.equal a b
      | _ -> false
    in
    if not same then changed := i :: !changed
  done;
  !changed
