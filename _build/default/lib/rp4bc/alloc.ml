(* Table placement into the disaggregated memory pool.

   The paper formulates table mapping as a set-packing problem and embeds
   an integer-programming solver (YALMIP) into rp4bc; here the [Solver]
   library's branch-and-bound ILP plays that role. Decision variable
   x[t][c] places table t in cluster c; each cluster's free-block capacity
   bounds its load, and placements in the cluster of the hosting TSP are
   preferred (a cross-cluster placement would be unreachable through a
   clustered crossbar, so with clustering enabled it is excluded outright
   rather than merely penalised). *)

type request = {
  rq_table : string;
  rq_entry_width : int;
  rq_depth : int;
  rq_host_cluster : int option; (* cluster of the hosting TSP, if clustered *)
}

type decision = {
  dc_table : string;
  dc_cluster : int option; (* None = full crossbar, blocks may span clusters *)
  dc_blocks : int;
}

let place ~(pool : Mem.Pool.t) ~(clustered : bool) (requests : request list) :
    (decision list, string) result =
  (* With a full crossbar a table's blocks may come from anywhere, so the
     capacity model is one pool-wide bucket; a clustered crossbar makes
     each cluster a separate bucket and pins tables to their host's. *)
  let nclusters = if clustered then Mem.Pool.nclusters pool else 1 in
  let free =
    if clustered then
      Array.of_list
        (List.map (fun (_, used, total) -> total - used) (Mem.Pool.cluster_stats pool))
    else begin
      let used, free_blocks = Mem.Pool.stats pool in
      ignore used;
      [| free_blocks |]
    end
  in
  let reqs = Array.of_list requests in
  let ntables = Array.length reqs in
  (* Variables: one per admissible (table, cluster) pair. *)
  let vars = ref [] in
  Array.iteri
    (fun ti rq ->
      let need = Mem.Pool.blocks_needed pool ~entry_width:rq.rq_entry_width ~depth:rq.rq_depth in
      for c = 0 to nclusters - 1 do
        let admissible =
          match (clustered, rq.rq_host_cluster) with
          | true, Some hc -> c = hc
          | true, None | false, _ -> true
        in
        if admissible && need <= free.(c) then begin
          let preferred = clustered && rq.rq_host_cluster = Some c in
          vars := (ti, c, need, preferred) :: !vars
        end
      done)
    reqs;
  let vars = Array.of_list (List.rev !vars) in
  let nvars = Array.length vars in
  let objective =
    Array.map (fun (_, _, _, preferred) -> if preferred then 1001.0 else 1000.0) vars
  in
  (* One placement per table. *)
  let per_table =
    List.init ntables (fun ti ->
        let coefs = Array.make nvars 0.0 in
        Array.iteri (fun v (t, _, _, _) -> if t = ti then coefs.(v) <- 1.0) vars;
        (coefs, 1.0))
  in
  (* Cluster capacity. *)
  let per_cluster =
    List.init nclusters (fun c ->
        let coefs = Array.make nvars 0.0 in
        Array.iteri
          (fun v (_, c', need, _) -> if c' = c then coefs.(v) <- float_of_int need)
          vars;
        (coefs, float_of_int free.(c)))
  in
  let problem =
    { Solver.Ilp.nvars; objective; constraints = Array.of_list (per_table @ per_cluster) }
  in
  let sol = Solver.Ilp.solve problem in
  let decisions = ref [] and placed = Array.make ntables false in
  Array.iteri
    (fun v chosen ->
      if chosen then begin
        let ti, c, need, _ = vars.(v) in
        placed.(ti) <- true;
        let cluster =
          if clustered then Some c
          else
            (* full crossbar: honour the host preference when that cluster
               has room, otherwise let the pool pick blocks anywhere *)
            match reqs.(ti).rq_host_cluster with
            | Some hc ->
              let free_in_hc =
                List.fold_left
                  (fun acc (c', used, total) -> if c' = hc then total - used else acc)
                  0 (Mem.Pool.cluster_stats pool)
              in
              if need <= free_in_hc then Some hc else None
            | None -> None
        in
        decisions :=
          { dc_table = reqs.(ti).rq_table; dc_cluster = cluster; dc_blocks = need }
          :: !decisions
      end)
    sol.Solver.Ilp.assignment;
  let unplaced =
    List.filteri (fun ti _ -> not placed.(ti)) (Array.to_list reqs)
  in
  if unplaced <> [] then
    Error
      (Printf.sprintf "memory pool cannot fit tables: %s"
         (String.concat ", " (List.map (fun r -> r.rq_table) unplaced)))
  else Ok (List.rev !decisions)
