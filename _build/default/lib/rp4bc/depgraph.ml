(* Stage dependency analysis.

   rp4bc merges *independent* logical stages into one TSP (Sec. 3.1: "One
   TSP can host multiple independent stages"). Independence is established
   from read/write sets, with one refinement: stages whose guards are
   provably mutually exclusive (e.g. [meta.l3_type == 4] vs
   [meta.l3_type == 6], or validity of two alternative headers reached by
   different tags of the same implicit parser) may conflict on writes —
   only one of them ever fires per packet. *)

module SS = Set.Make (String)

type stage_summary = {
  ss_name : string;
  ss_reads : SS.t; (* field refs read: keys, conditions, action exprs *)
  ss_writes : SS.t; (* field refs written by any reachable action *)
  ss_tables : SS.t;
  ss_guard : Rp4.Ast.cond; (* top-level matcher guard, C_true if none *)
}

let ref_str = Rp4.Ast.field_ref_to_string

let valid_ref h = h ^ ".$valid"

(* The guard of a stage: the condition wrapping the whole matcher, if the
   matcher is a single if-chain. *)
let guard_of (s : Rp4.Ast.stage_decl) =
  match s.Rp4.Ast.st_matcher with
  | Rp4.Ast.M_if (c, _, Rp4.Ast.M_nop) -> c
  | _ -> Rp4.Ast.C_true

let summarize env (s : Rp4.Ast.stage_decl) : stage_summary =
  let reads = ref SS.empty and writes = ref SS.empty in
  let add_read fr = reads := SS.add (ref_str fr) !reads in
  let add_write fr = writes := SS.add (ref_str fr) !writes in
  (* matcher conditions *)
  let rec walk_matcher m =
    match m with
    | Rp4.Ast.M_nop -> ()
    | Rp4.Ast.M_seq ms -> List.iter walk_matcher ms
    | Rp4.Ast.M_if (c, a, b) ->
      List.iter add_read (Rp4.Ast.cond_reads c);
      List.iter (fun h -> reads := SS.add (valid_ref h) !reads) (Rp4.Ast.cond_headers c);
      walk_matcher a;
      walk_matcher b
    | Rp4.Ast.M_apply tname -> (
      match Rp4.Ast.find_table env.Rp4.Semantic.prog tname with
      | Some td -> List.iter (fun (fr, _) -> add_read fr) td.Rp4.Ast.td_key
      | None -> ())
  in
  walk_matcher s.Rp4.Ast.st_matcher;
  (* executor actions *)
  let actions =
    List.concat_map snd s.Rp4.Ast.st_executor.Rp4.Ast.ex_cases
    @ s.Rp4.Ast.st_executor.Rp4.Ast.ex_default
  in
  List.iter
    (fun name ->
      match Rp4.Ast.find_action env.Rp4.Semantic.prog name with
      | Some a ->
        List.iter
          (fun stmt ->
            List.iter add_read (Rp4.Ast.stmt_reads stmt);
            List.iter add_write (Rp4.Ast.stmt_writes stmt))
          a.Rp4.Ast.ad_body
      | None -> ())
    actions;
  {
    ss_name = s.Rp4.Ast.st_name;
    ss_reads = !reads;
    ss_writes = !writes;
    ss_tables = SS.of_list (Rp4.Ast.matcher_tables s.Rp4.Ast.st_matcher);
    ss_guard = guard_of s;
  }

(* --- guard exclusivity ------------------------------------------------ *)

(* Equality atoms (field = constant) of a conjunction. *)
let rec eq_atoms = function
  | Rp4.Ast.C_rel (Rp4.Ast.Eq, Rp4.Ast.E_field fr, Rp4.Ast.E_const (v, _))
  | Rp4.Ast.C_rel (Rp4.Ast.Eq, Rp4.Ast.E_const (v, _), Rp4.Ast.E_field fr) ->
    [ (ref_str fr, v) ]
  | Rp4.Ast.C_and (a, b) -> eq_atoms a @ eq_atoms b
  | _ -> []

let rec validity_atoms = function
  | Rp4.Ast.C_valid h -> [ h ]
  | Rp4.Ast.C_and (a, b) -> validity_atoms a @ validity_atoms b
  | _ -> []

(* Two headers are parse-alternatives when some implicit parser reaches
   them through different tags of the same selector — they cannot both be
   on one packet's parse chain. *)
let parse_alternatives env h1 h2 =
  h1 <> h2
  && List.exists
       (fun (hd : Rp4.Ast.header_decl) ->
         match hd.Rp4.Ast.hd_parser with
         | Some ip ->
           let targets = List.map snd ip.Rp4.Ast.ip_cases in
           List.mem h1 targets && List.mem h2 targets
         | None -> false)
       env.Rp4.Semantic.prog.Rp4.Ast.headers

let guards_exclusive env g1 g2 =
  (* same field constrained to different constants *)
  let atoms1 = eq_atoms g1 and atoms2 = eq_atoms g2 in
  List.exists
    (fun (f1, v1) ->
      List.exists (fun (f2, v2) -> f1 = f2 && not (Int64.equal v1 v2)) atoms2)
    atoms1
  || (* validity of alternative headers *)
  List.exists
    (fun h1 -> List.exists (fun h2 -> parse_alternatives env h1 h2) (validity_atoms g2))
    (validity_atoms g1)

(* --- independence ------------------------------------------------------ *)

type dependency =
  | Independent
  | Match_dep of string (* b's match reads a field a writes *)
  | Action_dep of string (* write/write or a reads what b writes *)
  | Table_shared of string

let classify env a b =
  let shared_tables = SS.inter a.ss_tables b.ss_tables in
  if not (SS.is_empty shared_tables) then Table_shared (SS.choose shared_tables)
  else begin
    let excl = guards_exclusive env a.ss_guard b.ss_guard in
    if excl then Independent
    else begin
      let w_r = SS.inter a.ss_writes b.ss_reads in
      let w_w = SS.inter a.ss_writes b.ss_writes in
      let r_w = SS.inter a.ss_reads b.ss_writes in
      if not (SS.is_empty w_r) then Match_dep (SS.choose w_r)
      else if not (SS.is_empty w_w) then Action_dep (SS.choose w_w)
      else if not (SS.is_empty r_w) then Action_dep (SS.choose r_w)
      else Independent
    end
  end

let independent env a b = classify env a b = Independent
