(** Stage graphs: the logical control flow between pipeline stages.

    A design's stages form a DAG rooted at the pipe entry; the
    controller's [add_link]/[del_link] commands (Fig. 5(b)) edit the
    edges, and function deletion is edge removal — stages that become
    unreachable are recycled with their tables. rp4bc linearises the DAG
    (topological order) onto the physical TSP chain; stage guards make
    off-path stages no-ops, so linearisation preserves semantics. *)

type t

val create : ?entry:string -> unit -> t
val copy : t -> t

val of_chain : string list -> t
(** Consecutive stages chained by edges; the first is the entry. *)

val set_entry : t -> string -> unit
val entry : t -> string option
val edges : t -> (string * string) list

val add_link : t -> from_:string -> to_:string -> unit
(** Idempotent. *)

val del_link : t -> from_:string -> to_:string -> unit

val succs : t -> string -> string list
val preds : t -> string -> string list

val reachable : t -> string list
(** Stages reachable from the entry, preorder. *)

exception Cycle of string

val topo_order : t -> string list
(** Topological order of the reachable stages, entry first; branch
    siblings come out adjacent (what the merge pass wants).
    @raise Cycle when the reachable subgraph is cyclic. *)
