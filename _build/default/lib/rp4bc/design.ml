(* A compiled base design: the artifact users reason about when planning
   in-situ updates.

   Holds the merged rP4 program (single source of truth, including the
   current header linkage inside the implicit parsers), the stage graphs
   of both pipes, the physical layout, and the table placement decisions.
   rp4bc's incremental flow consumes a design plus a snippet and produces
   an updated design plus a device patch. *)

type t = {
  prog : Rp4.Ast.program;
  env : Rp4.Semantic.env;
  igraph : Graph.t;
  egraph : Graph.t;
  layout : Layout.t;
  table_cluster : (string * int option) list; (* placement decisions *)
  table_host : (string * int) list; (* table -> hosting TSP *)
  limits : Group.limits;
  clustered : bool;
}

let layout t = t.layout
let program t = t.prog

(* The updated base design as rP4 source — rp4bc's first output for an
   incremental update. Stages are emitted in execution (topological)
   order so that re-parsing the source reproduces the same chain. *)
let to_source t =
  let ordered_stages graph =
    List.filter_map (Rp4.Ast.find_stage t.prog) (Graph.topo_order graph)
  in
  let prog =
    {
      t.prog with
      Rp4.Ast.ingress = ordered_stages t.igraph;
      egress = ordered_stages t.egraph;
      loose_stages = [];
    }
  in
  Rp4.Pretty.program prog

(* Stages of a function, per the user_funcs section. *)
let func_stages t name =
  match Rp4.Ast.find_func t.prog name with
  | Some f -> f.Rp4.Ast.fn_stages
  | None -> []

(* Fig. 4-style description: TSP index -> hosted logical stages. *)
let mapping t =
  List.map
    (fun (i, g) ->
      (i, g.Group.g_stages, Ipsa.Pipeline.role_to_string t.layout.Layout.roles.(i)))
    (Layout.assignment t.layout)

let mapping_to_string t =
  String.concat "\n"
    (List.map
       (fun (i, stages, role) ->
         Printf.sprintf "TSP %d [%s]: %s" i role (String.concat " + " stages))
       (mapping t))

(* Tables referenced by stages reachable in either pipe. *)
let live_tables t =
  let stages =
    Graph.reachable t.igraph @ Graph.reachable t.egraph
  in
  List.sort_uniq String.compare
    (List.concat_map
       (fun sname ->
         match Rp4.Ast.find_stage t.prog sname with
         | Some s -> Rp4.Ast.matcher_tables s.Rp4.Ast.st_matcher
         | None -> [])
       stages)
