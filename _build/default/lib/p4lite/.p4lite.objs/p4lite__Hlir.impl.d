lib/p4lite/hlir.ml: Ast Format List Rp4 String
