lib/p4lite/parser.ml: Array Ast Format Int64 List Rp4 String Table
