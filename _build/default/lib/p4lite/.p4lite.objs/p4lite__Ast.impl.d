lib/p4lite/ast.ml: List Rp4 Table
