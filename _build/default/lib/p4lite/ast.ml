(* Abstract syntax for the P4_16 subset the front end accepts.

   The subset covers what the paper's base design and use cases need:
   header type declarations, a headers struct (instances), a metadata
   struct, a parser state machine with extract/select, actions with
   assignment bodies, tables with typed keys and action lists, and an
   ingress control with an apply block of conditionals and table applies.

   Action statements, expressions and conditions reuse the rP4 AST types:
   rp4fc's job is structural transformation (parse graph -> implicit
   parsers, apply block -> stages), not expression rewriting. *)

type field = { f_name : string; f_width : int }

type header_type = { ht_name : string; ht_fields : field list }

(* One member of the [struct headers { ethernet_t ethernet; ... }]. *)
type instance = { i_name : string; i_type : string }

(* A parser state: extracts then transitions. *)
type select_case = { sc_tag : int64; sc_state : string }

type transition =
  | T_direct of string (* transition parse_x; "accept" ends *)
  | T_select of Rp4.Ast.field_ref * select_case list * string (* default state *)

type pstate = {
  ps_name : string;
  ps_extracts : string list; (* instance names, in order *)
  ps_transition : transition;
}

type action_decl = {
  a_name : string;
  a_params : (string * int) list;
  a_body : Rp4.Ast.stmt list;
}

type table_decl = {
  t_name : string;
  t_key : (Rp4.Ast.field_ref * Table.Key.match_kind) list;
  t_actions : string list; (* in declaration order; positions define tags *)
  t_size : int;
  t_default : string option;
}

type apply_stmt =
  | A_apply of string
  | A_if of Rp4.Ast.cond * apply_stmt list * apply_stmt list

type program = {
  header_types : header_type list;
  instances : instance list;
  metadata : field list;
  states : pstate list;
  actions : action_decl list;
  tables : table_decl list;
  apply : apply_stmt list;
}

let find_header_type p name = List.find_opt (fun h -> h.ht_name = name) p.header_types
let find_instance p name = List.find_opt (fun i -> i.i_name = name) p.instances
let find_state p name = List.find_opt (fun s -> s.ps_name = name) p.states
let find_table p name = List.find_opt (fun t -> t.t_name = name) p.tables
let find_action p name = List.find_opt (fun a -> a.a_name = name) p.actions
