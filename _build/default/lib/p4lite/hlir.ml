(* HLIR: the target-independent facts rp4fc consumes (the paper: "rp4fc
   takes the HLIR, the target-independent output of p4c, as input").

   From the parser state machine we recover the *header-linkage* view:
   which instance is parsed first, and which (instance, selector-field,
   tag) triples lead to which next instance. This is exactly the shape of
   rP4's implicit parsers. *)

type parse_edge = {
  pe_from : string; (* instance whose field is selected on *)
  pe_sel_field : string;
  pe_tag : int64;
  pe_to : string; (* instance extracted next *)
}

type parse_graph = {
  pg_first : string option; (* first instance extracted *)
  pg_edges : parse_edge list;
}

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* First instance extracted when entering [state_name], following direct
   transitions through non-extracting states. *)
let rec first_extract prog state_name depth =
  if depth > 64 then unsupported "parser transition loop";
  if state_name = "accept" || state_name = "reject" then None
  else
    match Ast.find_state prog state_name with
    | None -> unsupported "parser: unknown state %s" state_name
    | Some s -> (
      match s.Ast.ps_extracts with
      | inst :: _ -> Some inst
      | [] -> (
        match s.Ast.ps_transition with
        | Ast.T_direct next -> first_extract prog next (depth + 1)
        | Ast.T_select _ ->
          unsupported "parser: select in non-extracting state %s" state_name))

let build (prog : Ast.program) : parse_graph =
  let first = first_extract prog "start" 0 in
  let edges = ref [] in
  List.iter
    (fun (s : Ast.pstate) ->
      match s.Ast.ps_transition with
      | Ast.T_direct next ->
        (* A direct transition between two extracting states has no tag to
           dispatch on; rP4's implicit parser cannot express it. The start
           chain (non-extracting states) is handled by [first_extract]. *)
        if s.Ast.ps_extracts <> [] && first_extract prog next 0 <> None then
          unsupported
            "parser: unconditional chaining from extracting state %s is not \
             expressible as an implicit parser"
            s.Ast.ps_name
      | Ast.T_select (fr, cases, _default) ->
        let from_inst, sel_field =
          match fr with
          | Rp4.Ast.Hdr_field (i, f) -> (i, f)
          | Rp4.Ast.Meta_field _ -> unsupported "parser: select on metadata"
        in
        List.iter
          (fun (c : Ast.select_case) ->
            match first_extract prog c.Ast.sc_state 0 with
            | Some next_inst ->
              edges :=
                {
                  pe_from = from_inst;
                  pe_sel_field = sel_field;
                  pe_tag = c.Ast.sc_tag;
                  pe_to = next_inst;
                }
                :: !edges
            | None -> () (* case leads straight to accept *))
          cases)
    prog.Ast.states;
  { pg_first = first; pg_edges = List.rev !edges }

(* Selector fields of an instance (fields its selects dispatch on). *)
let sel_fields_of graph inst =
  List.sort_uniq String.compare
    (List.filter_map
       (fun e -> if e.pe_from = inst then Some e.pe_sel_field else None)
       graph.pg_edges)

let cases_of graph inst =
  List.filter_map
    (fun e -> if e.pe_from = inst then Some (e.pe_tag, e.pe_to) else None)
    graph.pg_edges
