(* Canonical rP4 source emission.

   rp4bc's first output for an incremental update is "the updated base
   design" — rP4 source text. Pretty-printing the AST back to source makes
   the design round-trippable: [Parser.parse_string (Pretty.program p)]
   yields [p] again (a property-tested invariant). *)

open Ast

let rec expr_to_string = function
  | E_const (v, None) ->
    if Int64.compare v 255L > 0 then Printf.sprintf "0x%Lx" v else Int64.to_string v
  | E_const (v, Some w) -> Printf.sprintf "%dw0x%Lx" w v
  | E_field fr -> field_ref_to_string fr
  | E_param p -> p
  | E_binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
      (expr_to_string b)

let rec cond_to_string = function
  | C_valid h -> Printf.sprintf "%s.isValid()" h
  | C_rel (op, a, b) ->
    Printf.sprintf "%s %s %s" (expr_to_string a) (relop_to_string op) (expr_to_string b)
  | C_not c -> Printf.sprintf "!(%s)" (cond_to_string c)
  | C_and (a, b) -> Printf.sprintf "(%s && %s)" (cond_to_string a) (cond_to_string b)
  | C_or (a, b) -> Printf.sprintf "(%s || %s)" (cond_to_string a) (cond_to_string b)
  | C_true -> "1 == 1"

let stmt_to_string = function
  | S_assign (fr, e) -> Printf.sprintf "%s = %s;" (field_ref_to_string fr) (expr_to_string e)
  | S_drop -> "drop();"
  | S_mark e -> Printf.sprintf "mark(%s);" (expr_to_string e)
  | S_noop -> "no_op();"
  | S_set_valid h -> Printf.sprintf "set_valid(%s);" h
  | S_set_invalid h -> Printf.sprintf "set_invalid(%s);" h
  | S_mark_exceed (t, v) ->
    Printf.sprintf "mark_exceed(%s, %s);" (expr_to_string t) (expr_to_string v)

let header_to_string (h : header_decl) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "  header %s {\n" h.hd_name);
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "    bit<%d> %s;\n" f.fd_width f.fd_name))
    h.hd_fields;
  (match h.hd_parser with
  | Some ip ->
    Buffer.add_string buf
      (Printf.sprintf "    implicit parser (%s) {\n" (String.concat ", " ip.ip_sel));
    List.iter
      (fun (tag, next) -> Buffer.add_string buf (Printf.sprintf "      0x%Lx : %s;\n" tag next))
      ip.ip_cases;
    Buffer.add_string buf "    }\n"
  | None -> ());
  Buffer.add_string buf "  }\n";
  Buffer.contents buf

let struct_to_string (s : struct_decl) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "  struct %s {\n" s.sd_name);
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "    bit<%d> %s;\n" f.fd_width f.fd_name))
    s.sd_members;
  Buffer.add_string buf
    (match s.sd_alias with Some a -> Printf.sprintf "  } %s;\n" a | None -> "  }\n");
  Buffer.contents buf

let action_to_string (a : action_decl) =
  let params =
    String.concat ", "
      (List.map (fun (p, w) -> Printf.sprintf "bit<%d> %s" w p) a.ad_params)
  in
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "action %s(%s) {\n" a.ad_name params);
  List.iter (fun s -> Buffer.add_string buf ("  " ^ stmt_to_string s ^ "\n")) a.ad_body;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let table_to_string (t : table_decl) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "table %s {\n  key = {\n" t.td_name);
  List.iter
    (fun (fr, kind) ->
      Buffer.add_string buf
        (Printf.sprintf "    %s : %s;\n" (field_ref_to_string fr)
           (Table.Key.match_kind_to_string kind)))
    t.td_key;
  Buffer.add_string buf (Printf.sprintf "  }\n  size = %d;\n}\n" t.td_size);
  Buffer.contents buf

let rec matcher_lines indent = function
  | M_apply t -> [ indent ^ t ^ ".apply();" ]
  | M_nop -> [ indent ^ ";" ]
  | M_seq ms -> List.concat_map (matcher_lines indent) ms
  | M_if (c, then_, else_) ->
    let then_lines =
      match matcher_lines (indent ^ "  ") then_ with
      | [] -> [ indent ^ "  ;" ]
      | ls -> ls
    in
    let head = Printf.sprintf "%sif (%s)" indent (cond_to_string c) in
    let else_lines =
      match else_ with
      | M_nop -> []
      | e -> (indent ^ "else") :: matcher_lines (indent ^ "  ") e
    in
    (head :: then_lines) @ else_lines

let stage_to_string ?(indent = "  ") (s : stage_decl) =
  let buf = Buffer.create 128 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string buf (str ^ "\n")) fmt in
  line "%sstage %s {" indent s.st_name;
  line "%s  parser { %s };" indent (String.concat ", " s.st_parser);
  line "%s  matcher {" indent;
  List.iter (fun l -> Buffer.add_string buf (l ^ "\n")) (matcher_lines (indent ^ "    ") s.st_matcher);
  line "%s  };" indent;
  line "%s  executor {" indent;
  List.iter
    (fun (tag, acts) -> line "%s    %d : %s;" indent tag (String.concat ", " acts))
    s.st_executor.ex_cases;
  (match s.st_executor.ex_default with
  | [] -> ()
  | acts -> line "%s    default : %s;" indent (String.concat ", " acts));
  line "%s  }" indent;
  line "%s}" indent;
  Buffer.contents buf

let program (p : program) =
  let buf = Buffer.create 1024 in
  if p.headers <> [] then begin
    Buffer.add_string buf "headers {\n";
    List.iter (fun h -> Buffer.add_string buf (header_to_string h)) p.headers;
    Buffer.add_string buf "}\n\n"
  end;
  if p.structs <> [] then begin
    Buffer.add_string buf "structs {\n";
    List.iter (fun s -> Buffer.add_string buf (struct_to_string s)) p.structs;
    Buffer.add_string buf "}\n\n"
  end;
  List.iter (fun a -> Buffer.add_string buf (action_to_string a ^ "\n")) p.actions;
  List.iter (fun t -> Buffer.add_string buf (table_to_string t ^ "\n")) p.tables;
  if p.ingress <> [] then begin
    Buffer.add_string buf "control rP4_Ingress {\n";
    List.iter (fun s -> Buffer.add_string buf (stage_to_string s)) p.ingress;
    Buffer.add_string buf "}\n\n"
  end;
  if p.egress <> [] then begin
    Buffer.add_string buf "control rP4_Egress {\n";
    List.iter (fun s -> Buffer.add_string buf (stage_to_string s)) p.egress;
    Buffer.add_string buf "}\n\n"
  end;
  List.iter
    (fun s -> Buffer.add_string buf (stage_to_string ~indent:"" s ^ "\n"))
    p.loose_stages;
  if p.funcs <> [] || p.ingress_entry <> None || p.egress_entry <> None then begin
    Buffer.add_string buf "user_funcs {\n";
    List.iter
      (fun f ->
        Buffer.add_string buf
          (Printf.sprintf "  func %s { %s }\n" f.fn_name (String.concat " " f.fn_stages)))
      p.funcs;
    (match p.ingress_entry with
    | Some e -> Buffer.add_string buf (Printf.sprintf "  ingress_entry : %s;\n" e)
    | None -> ());
    (match p.egress_entry with
    | Some e -> Buffer.add_string buf (Printf.sprintf "  egress_entry : %s;\n" e)
    | None -> ());
    Buffer.add_string buf "}\n"
  end;
  Buffer.contents buf
