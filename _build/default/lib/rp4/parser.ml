(* Recursive-descent parser for rP4 (EBNF of Fig. 2).

   Accepts both complete programs and incremental-update snippets: any of
   the top-level sections may appear, in any order, and stages may appear
   outside a control block (they land in [loose_stages] and are grouped
   into a function by the controller's [load … --func_name] command). *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type state = { toks : Lexer.located array; mutable pos : int }

let peek st = st.toks.(st.pos).Lexer.tok
let peek_loc st = st.toks.(st.pos)

let peek_ahead st n =
  let i = min (st.pos + n) (Array.length st.toks - 1) in
  st.toks.(i).Lexer.tok

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st tok =
  let t = peek_loc st in
  if t.Lexer.tok = tok then advance st
  else
    error "line %d: expected %s, found %s" t.Lexer.line (Lexer.token_to_string tok)
      (Lexer.token_to_string t.Lexer.tok)

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let ident st =
  let t = peek_loc st in
  match t.Lexer.tok with
  | Lexer.IDENT s ->
    advance st;
    s
  | other -> error "line %d: expected identifier, found %s" t.Lexer.line (Lexer.token_to_string other)

let keyword st kw =
  let t = peek_loc st in
  match t.Lexer.tok with
  | Lexer.IDENT s when s = kw -> advance st
  | other ->
    error "line %d: expected keyword %S, found %s" t.Lexer.line kw
      (Lexer.token_to_string other)

let int_lit st =
  let t = peek_loc st in
  match t.Lexer.tok with
  | Lexer.INT v ->
    advance st;
    (v, None)
  | Lexer.WINT (w, v) ->
    advance st;
    (v, Some w)
  | other ->
    error "line %d: expected integer, found %s" t.Lexer.line (Lexer.token_to_string other)

(* bit<width> *)
let bit_type st =
  keyword st "bit";
  expect st Lexer.LT;
  let w, _ = int_lit st in
  expect st Lexer.GT;
  Int64.to_int w

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* In expression position: "a.b" is a header field (metadata when a =
   "meta"); a bare identifier is an action parameter. The semantic pass
   re-resolves struct aliases and checks parameter declarations. *)
let rec primary st : Ast.expr =
  match peek st with
  | Lexer.INT _ | Lexer.WINT _ ->
    let v, w = int_lit st in
    Ast.E_const (v, w)
  | Lexer.LPAREN ->
    advance st;
    let e = expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT _ ->
    let a = ident st in
    if accept st Lexer.DOT then begin
      let b = ident st in
      if a = "meta" then Ast.E_field (Ast.Meta_field b)
      else Ast.E_field (Ast.Hdr_field (a, b))
    end
    else Ast.E_param a
  | other ->
    error "line %d: expected expression, found %s" (peek_loc st).Lexer.line
      (Lexer.token_to_string other)

and expr st : Ast.expr =
  let lhs = primary st in
  let rec loop lhs =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      loop (Ast.E_binop (Ast.Add, lhs, primary st))
    | Lexer.MINUS ->
      advance st;
      loop (Ast.E_binop (Ast.Sub, lhs, primary st))
    | Lexer.AMP ->
      advance st;
      loop (Ast.E_binop (Ast.Band, lhs, primary st))
    | Lexer.PIPE ->
      advance st;
      loop (Ast.E_binop (Ast.Bor, lhs, primary st))
    | Lexer.CARET ->
      advance st;
      loop (Ast.E_binop (Ast.Bxor, lhs, primary st))
    | _ -> lhs
  in
  loop lhs

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)
(* ------------------------------------------------------------------ *)

(* isValid atoms: <hdr>.isValid() — detected by lookahead before falling
   back to a relational expression. *)
let rec cond st : Ast.cond = cond_or st

and cond_or st =
  let lhs = cond_and st in
  if accept st Lexer.OROR then Ast.C_or (lhs, cond_or st) else lhs

and cond_and st =
  let lhs = cond_not st in
  if accept st Lexer.ANDAND then Ast.C_and (lhs, cond_and st) else lhs

and cond_not st =
  if accept st Lexer.BANG then Ast.C_not (cond_not st) else cond_atom st

and cond_atom st =
  (* Try "<ident>.isValid()" *)
  match (peek st, peek_ahead st 1, peek_ahead st 2) with
  | Lexer.IDENT h, Lexer.DOT, Lexer.IDENT "isValid" ->
    advance st;
    advance st;
    advance st;
    expect st Lexer.LPAREN;
    expect st Lexer.RPAREN;
    Ast.C_valid h
  | Lexer.LPAREN, _, _ ->
    (* Could be a parenthesised condition or expression; backtrack if the
       condition parse fails. *)
    let save = st.pos in
    (try
       advance st;
       let c = cond st in
       expect st Lexer.RPAREN;
       c
     with Error _ ->
       st.pos <- save;
       rel st)
  | _ -> rel st

and rel st =
  let lhs = expr st in
  let op =
    match peek st with
    | Lexer.EQEQ -> Some Ast.Eq
    | Lexer.NEQ -> Some Ast.Neq
    | Lexer.LT -> Some Ast.Lt
    | Lexer.GT -> Some Ast.Gt
    | Lexer.LE -> Some Ast.Le
    | Lexer.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | Some op ->
    advance st;
    Ast.C_rel (op, lhs, expr st)
  | None ->
    error "line %d: expected relational operator in condition" (peek_loc st).Lexer.line

(* ------------------------------------------------------------------ *)
(* Sections                                                            *)
(* ------------------------------------------------------------------ *)

let field_decl st =
  let w = bit_type st in
  let name = ident st in
  expect st Lexer.SEMI;
  { Ast.fd_name = name; fd_width = w }

let implicit_parser st =
  keyword st "implicit";
  keyword st "parser";
  expect st Lexer.LPAREN;
  let rec sel acc =
    let f = ident st in
    if accept st Lexer.COMMA then sel (f :: acc) else List.rev (f :: acc)
  in
  let sel_fields = sel [] in
  expect st Lexer.RPAREN;
  expect st Lexer.LBRACE;
  let cases = ref [] in
  while peek st <> Lexer.RBRACE do
    let tag, _ = int_lit st in
    expect st Lexer.COLON;
    let next = ident st in
    expect st Lexer.SEMI;
    cases := (tag, next) :: !cases
  done;
  expect st Lexer.RBRACE;
  { Ast.ip_sel = sel_fields; ip_cases = List.rev !cases }

let header_decl st =
  keyword st "header";
  let name = ident st in
  expect st Lexer.LBRACE;
  let fields = ref [] and parser_ = ref None in
  let rec loop () =
    match peek st with
    | Lexer.RBRACE -> ()
    | Lexer.IDENT "implicit" ->
      if !parser_ <> None then error "header %s: duplicate implicit parser" name;
      parser_ := Some (implicit_parser st);
      loop ()
    | Lexer.IDENT "bit" ->
      fields := field_decl st :: !fields;
      loop ()
    | other ->
      error "line %d: in header %s: unexpected %s" (peek_loc st).Lexer.line name
        (Lexer.token_to_string other)
  in
  loop ();
  expect st Lexer.RBRACE;
  { Ast.hd_name = name; hd_fields = List.rev !fields; hd_parser = !parser_ }

let struct_decl st =
  keyword st "struct";
  let name = ident st in
  expect st Lexer.LBRACE;
  let members = ref [] in
  while peek st <> Lexer.RBRACE do
    members := field_decl st :: !members
  done;
  expect st Lexer.RBRACE;
  let alias = match peek st with
    | Lexer.IDENT a ->
      advance st;
      Some a
    | _ -> None
  in
  if accept st Lexer.SEMI then ();
  { Ast.sd_name = name; sd_members = List.rev !members; sd_alias = alias }

let lvalue st =
  let a = ident st in
  expect st Lexer.DOT;
  let b = ident st in
  if a = "meta" then Ast.Meta_field b else Ast.Hdr_field (a, b)

let stmt st : Ast.stmt =
  match (peek st, peek_ahead st 1) with
  | Lexer.IDENT "drop", Lexer.LPAREN ->
    advance st;
    expect st Lexer.LPAREN;
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    Ast.S_drop
  | Lexer.IDENT ("no_op" | "NoAction"), Lexer.LPAREN ->
    advance st;
    expect st Lexer.LPAREN;
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    Ast.S_noop
  | Lexer.IDENT "mark", Lexer.LPAREN ->
    advance st;
    expect st Lexer.LPAREN;
    let e = expr st in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    Ast.S_mark e
  | Lexer.IDENT "mark_exceed", Lexer.LPAREN ->
    advance st;
    expect st Lexer.LPAREN;
    let threshold = expr st in
    expect st Lexer.COMMA;
    let v = expr st in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    Ast.S_mark_exceed (threshold, v)
  | Lexer.IDENT "set_valid", Lexer.LPAREN ->
    advance st;
    expect st Lexer.LPAREN;
    let h = ident st in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    Ast.S_set_valid h
  | Lexer.IDENT "set_invalid", Lexer.LPAREN ->
    advance st;
    expect st Lexer.LPAREN;
    let h = ident st in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    Ast.S_set_invalid h
  | _ ->
    let lv = lvalue st in
    expect st Lexer.EQ;
    let e = expr st in
    expect st Lexer.SEMI;
    Ast.S_assign (lv, e)

let action_decl st =
  keyword st "action";
  let name = ident st in
  expect st Lexer.LPAREN;
  let params = ref [] in
  if peek st <> Lexer.RPAREN then begin
    let rec loop () =
      let w = bit_type st in
      let p = ident st in
      params := (p, w) :: !params;
      if accept st Lexer.COMMA then loop ()
    in
    loop ()
  end;
  expect st Lexer.RPAREN;
  expect st Lexer.LBRACE;
  let body = ref [] in
  while peek st <> Lexer.RBRACE do
    body := stmt st :: !body
  done;
  expect st Lexer.RBRACE;
  { Ast.ad_name = name; ad_params = List.rev !params; ad_body = List.rev !body }

let table_decl st =
  keyword st "table";
  let name = ident st in
  expect st Lexer.LBRACE;
  let key = ref [] and size = ref 1024 in
  let rec loop () =
    match peek st with
    | Lexer.RBRACE -> ()
    | Lexer.IDENT "key" ->
      advance st;
      expect st Lexer.EQ;
      expect st Lexer.LBRACE;
      while peek st <> Lexer.RBRACE do
        let fr =
          let a = ident st in
          expect st Lexer.DOT;
          let b = ident st in
          if a = "meta" then Ast.Meta_field b else Ast.Hdr_field (a, b)
        in
        expect st Lexer.COLON;
        let kind_line = (peek_loc st).Lexer.line in
        let kind_name = ident st in
        let kind =
          try Table.Key.match_kind_of_string kind_name
          with Invalid_argument _ ->
            error "line %d: unknown match kind %S" kind_line kind_name
        in
        expect st Lexer.SEMI;
        key := (fr, kind) :: !key
      done;
      expect st Lexer.RBRACE;
      ignore (accept st Lexer.SEMI);
      loop ()
    | Lexer.IDENT "size" ->
      advance st;
      expect st Lexer.EQ;
      let v, _ = int_lit st in
      expect st Lexer.SEMI;
      size := Int64.to_int v;
      loop ()
    | other ->
      error "line %d: in table %s: unexpected %s" (peek_loc st).Lexer.line name
        (Lexer.token_to_string other)
  in
  loop ();
  expect st Lexer.RBRACE;
  { Ast.td_name = name; td_key = List.rev !key; td_size = !size }

(* matcher body: sequence of applies / conditionals / empty statements *)
let rec matcher_item st : Ast.matcher =
  match peek st with
  | Lexer.IDENT "if" ->
    advance st;
    expect st Lexer.LPAREN;
    let c = cond st in
    expect st Lexer.RPAREN;
    let then_ = matcher_item st in
    let else_ =
      if peek st = Lexer.IDENT "else" then begin
        advance st;
        (* "else;" = explicit empty branch *)
        if accept st Lexer.SEMI then Ast.M_nop else matcher_item st
      end
      else Ast.M_nop
    in
    Ast.M_if (c, then_, else_)
  | Lexer.SEMI ->
    advance st;
    Ast.M_nop
  | Lexer.LBRACE ->
    advance st;
    let items = ref [] in
    while peek st <> Lexer.RBRACE do
      items := matcher_item st :: !items
    done;
    expect st Lexer.RBRACE;
    Ast.M_seq (List.rev !items)
  | Lexer.IDENT _ ->
    let t = ident st in
    expect st Lexer.DOT;
    keyword st "apply";
    expect st Lexer.LPAREN;
    expect st Lexer.RPAREN;
    ignore (accept st Lexer.SEMI);
    Ast.M_apply t
  | other ->
    error "line %d: in matcher: unexpected %s" (peek_loc st).Lexer.line
      (Lexer.token_to_string other)

let stage_decl st =
  keyword st "stage";
  let name = ident st in
  expect st Lexer.LBRACE;
  let parser_ = ref [] and matcher_ = ref Ast.M_nop and executor = ref { Ast.ex_cases = []; ex_default = [] } in
  let rec loop () =
    match peek st with
    | Lexer.RBRACE -> ()
    | Lexer.IDENT "parser" ->
      advance st;
      expect st Lexer.LBRACE;
      let insts = ref [] in
      while peek st <> Lexer.RBRACE do
        insts := ident st :: !insts;
        ignore (accept st Lexer.COMMA);
        ignore (accept st Lexer.SEMI)
      done;
      expect st Lexer.RBRACE;
      ignore (accept st Lexer.SEMI);
      parser_ := List.rev !insts;
      loop ()
    | Lexer.IDENT "matcher" ->
      advance st;
      expect st Lexer.LBRACE;
      let items = ref [] in
      while peek st <> Lexer.RBRACE do
        items := matcher_item st :: !items
      done;
      expect st Lexer.RBRACE;
      ignore (accept st Lexer.SEMI);
      matcher_ :=
        (match List.rev !items with [ m ] -> m | items -> Ast.M_seq items);
      loop ()
    | Lexer.IDENT "executor" ->
      advance st;
      expect st Lexer.LBRACE;
      let cases = ref [] and default = ref [] in
      while peek st <> Lexer.RBRACE do
        let tag =
          match peek st with
          | Lexer.IDENT "default" ->
            advance st;
            None
          | _ ->
            let v, _ = int_lit st in
            Some (Int64.to_int v)
        in
        expect st Lexer.COLON;
        let acts = ref [ ident st ] in
        while accept st Lexer.COMMA do
          acts := ident st :: !acts
        done;
        expect st Lexer.SEMI;
        (match tag with
        | Some t -> cases := (t, List.rev !acts) :: !cases
        | None -> default := List.rev !acts)
      done;
      expect st Lexer.RBRACE;
      ignore (accept st Lexer.SEMI);
      executor := { Ast.ex_cases = List.rev !cases; ex_default = !default };
      loop ()
    | other ->
      error "line %d: in stage %s: unexpected %s" (peek_loc st).Lexer.line name
        (Lexer.token_to_string other)
  in
  loop ();
  expect st Lexer.RBRACE;
  {
    Ast.st_name = name;
    st_parser = !parser_;
    st_matcher = !matcher_;
    st_executor = !executor;
  }

let user_funcs st =
  keyword st "user_funcs";
  expect st Lexer.LBRACE;
  let funcs = ref [] and ientry = ref None and eentry = ref None in
  let rec loop () =
    match peek st with
    | Lexer.RBRACE -> ()
    | Lexer.IDENT "func" ->
      advance st;
      let name = ident st in
      expect st Lexer.LBRACE;
      let stages = ref [] in
      while peek st <> Lexer.RBRACE do
        stages := ident st :: !stages;
        ignore (accept st Lexer.COMMA);
        ignore (accept st Lexer.SEMI)
      done;
      expect st Lexer.RBRACE;
      funcs := { Ast.fn_name = name; fn_stages = List.rev !stages } :: !funcs;
      loop ()
    | Lexer.IDENT "ingress_entry" ->
      advance st;
      expect st Lexer.COLON;
      ientry := Some (ident st);
      expect st Lexer.SEMI;
      loop ()
    | Lexer.IDENT "egress_entry" ->
      advance st;
      expect st Lexer.COLON;
      eentry := Some (ident st);
      expect st Lexer.SEMI;
      loop ()
    | other ->
      error "line %d: in user_funcs: unexpected %s" (peek_loc st).Lexer.line
        (Lexer.token_to_string other)
  in
  loop ();
  expect st Lexer.RBRACE;
  (List.rev !funcs, !ientry, !eentry)

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

let program st =
  let p = ref Ast.empty_program in
  let rec loop () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.IDENT "headers" ->
      advance st;
      expect st Lexer.LBRACE;
      while peek st <> Lexer.RBRACE do
        p := { !p with Ast.headers = !p.Ast.headers @ [ header_decl st ] }
      done;
      expect st Lexer.RBRACE;
      loop ()
    | Lexer.IDENT "header" ->
      p := { !p with Ast.headers = !p.Ast.headers @ [ header_decl st ] };
      loop ()
    | Lexer.IDENT "structs" ->
      advance st;
      expect st Lexer.LBRACE;
      while peek st <> Lexer.RBRACE do
        p := { !p with Ast.structs = !p.Ast.structs @ [ struct_decl st ] }
      done;
      expect st Lexer.RBRACE;
      loop ()
    | Lexer.IDENT "struct" ->
      p := { !p with Ast.structs = !p.Ast.structs @ [ struct_decl st ] };
      loop ()
    | Lexer.IDENT "action" ->
      p := { !p with Ast.actions = !p.Ast.actions @ [ action_decl st ] };
      loop ()
    | Lexer.IDENT "table" ->
      p := { !p with Ast.tables = !p.Ast.tables @ [ table_decl st ] };
      loop ()
    | Lexer.IDENT "control" ->
      advance st;
      let which = ident st in
      expect st Lexer.LBRACE;
      let stages = ref [] in
      while peek st <> Lexer.RBRACE do
        stages := stage_decl st :: !stages
      done;
      expect st Lexer.RBRACE;
      let stages = List.rev !stages in
      (match which with
      | "rP4_Ingress" -> p := { !p with Ast.ingress = !p.Ast.ingress @ stages }
      | "rP4_Egress" -> p := { !p with Ast.egress = !p.Ast.egress @ stages }
      | other -> error "unknown control block %S (expected rP4_Ingress/rP4_Egress)" other);
      loop ()
    | Lexer.IDENT "stage" ->
      p := { !p with Ast.loose_stages = !p.Ast.loose_stages @ [ stage_decl st ] };
      loop ()
    | Lexer.IDENT "user_funcs" ->
      let funcs, ientry, eentry = user_funcs st in
      p :=
        {
          !p with
          Ast.funcs = !p.Ast.funcs @ funcs;
          ingress_entry = (match ientry with Some _ -> ientry | None -> !p.Ast.ingress_entry);
          egress_entry = (match eentry with Some _ -> eentry | None -> !p.Ast.egress_entry);
        };
      loop ()
    | other ->
      error "line %d: unexpected %s at top level" (peek_loc st).Lexer.line
        (Lexer.token_to_string other)
  in
  loop ();
  !p

let parse_string src =
  let toks = Lexer.tokenize src in
  program { toks; pos = 0 }
