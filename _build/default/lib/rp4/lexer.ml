(* Hand-written lexer shared by the rP4 and P4-subset front ends.

   Produces located tokens; `//` and `/* */` comments are skipped. Integer
   literals may be decimal, hexadecimal (0x…), binary (0b…) or P4-style
   width-annotated (`8w0x0800`). *)

type token =
  | IDENT of string
  | INT of int64
  | WINT of int * int64 (* width-annotated literal: 8w255 *)
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LT
  | GT
  | LE
  | GE
  | EQ (* = *)
  | EQEQ (* == *)
  | NEQ (* != *)
  | COLON
  | SEMI
  | COMMA
  | DOT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | AMP (* & *)
  | PIPE (* | *)
  | CARET (* ^ *)
  | ANDAND
  | OROR
  | BANG
  | ARROW (* -> *)
  | EOF

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %Ld" i
  | WINT (w, v) -> Printf.sprintf "literal %dw%Ld" w v
  | STRING s -> Printf.sprintf "string %S" s
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LT -> "'<'"
  | GT -> "'>'"
  | LE -> "'<='"
  | GE -> "'>='"
  | EQ -> "'='"
  | EQEQ -> "'=='"
  | NEQ -> "'!='"
  | COLON -> "':'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | AMP -> "'&'"
  | PIPE -> "'|'"
  | CARET -> "'^'"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | ARROW -> "'->'"
  | EOF -> "end of input"

type located = { tok : token; line : int; col : int }

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ident_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false
let is_ident_char = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
let is_digit = function '0' .. '9' -> true | _ -> false

let rec skip_trivia st =
  match (peek st, peek2 st) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
    advance st;
    skip_trivia st
  | Some '/', Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_trivia st
  | Some '/', Some '*' ->
    advance st;
    advance st;
    let rec loop () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> error "line %d: unterminated comment" st.line
      | _ ->
        advance st;
        loop ()
    in
    loop ();
    skip_trivia st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  let consume_while pred =
    while (match peek st with Some c -> pred c | None -> false) do
      advance st
    done
  in
  (* leading digits *)
  consume_while is_digit;
  match peek st with
  | Some ('x' | 'X') when st.pos = start + 1 && st.src.[start] = '0' ->
    advance st;
    consume_while (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false);
    let text = String.sub st.src start (st.pos - start) in
    INT (Int64.of_string text)
  | Some ('b' | 'B') when st.pos = start + 1 && st.src.[start] = '0' ->
    advance st;
    consume_while (function '0' | '1' -> true | _ -> false);
    let text = String.sub st.src start (st.pos - start) in
    INT (Int64.of_string text)
  | Some 'w' ->
    (* width-annotated: <digits>w<literal> *)
    let width = int_of_string (String.sub st.src start (st.pos - start)) in
    advance st;
    let vstart = st.pos in
    (match (peek st, peek2 st) with
    | Some '0', Some ('x' | 'X') ->
      advance st;
      advance st;
      consume_while (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
    | _ -> consume_while is_digit);
    let text = String.sub st.src vstart (st.pos - vstart) in
    if text = "" then error "line %d: malformed width literal" st.line;
    WINT (width, Int64.of_string text)
  | _ ->
    let text = String.sub st.src start (st.pos - start) in
    INT (Int64.of_string text)

let lex_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some c -> Buffer.add_char buf c
      | None -> error "line %d: unterminated string" st.line);
      advance st;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
    | None -> error "line %d: unterminated string" st.line
  in
  loop ();
  STRING (Buffer.contents buf)

let next_token st =
  skip_trivia st;
  let line = st.line and col = st.col in
  let mk tok = { tok; line; col } in
  match peek st with
  | None -> mk EOF
  | Some c when is_ident_start c ->
    let start = st.pos in
    while (match peek st with Some c -> is_ident_char c | None -> false) do
      advance st
    done;
    mk (IDENT (String.sub st.src start (st.pos - start)))
  | Some c when is_digit c -> mk (lex_number st)
  | Some '"' -> mk (lex_string st)
  | Some c ->
    let two tok = advance st; advance st; mk tok in
    let one tok = advance st; mk tok in
    (match (c, peek2 st) with
    | '=', Some '=' -> two EQEQ
    | '!', Some '=' -> two NEQ
    | '<', Some '=' -> two LE
    | '>', Some '=' -> two GE
    | '&', Some '&' -> two ANDAND
    | '|', Some '|' -> two OROR
    | '-', Some '>' -> two ARROW
    | '{', _ -> one LBRACE
    | '}', _ -> one RBRACE
    | '(', _ -> one LPAREN
    | ')', _ -> one RPAREN
    | '[', _ -> one LBRACKET
    | ']', _ -> one RBRACKET
    | '<', _ -> one LT
    | '>', _ -> one GT
    | '=', _ -> one EQ
    | ':', _ -> one COLON
    | ';', _ -> one SEMI
    | ',', _ -> one COMMA
    | '.', _ -> one DOT
    | '+', _ -> one PLUS
    | '-', _ -> one MINUS
    | '*', _ -> one STAR
    | '/', _ -> one SLASH
    | '&', _ -> one AMP
    | '|', _ -> one PIPE
    | '^', _ -> one CARET
    | '!', _ -> one BANG
    | _ -> error "line %d, col %d: unexpected character %C" line col c)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec loop acc =
    let t = next_token st in
    if t.tok = EOF then List.rev (t :: acc) else loop (t :: acc)
  in
  Array.of_list (loop [])
