lib/rp4/semantic.ml: Ast Hashtbl Int64 List Net Printf Table
