lib/rp4/parser.ml: Array Ast Format Int64 Lexer List Table
