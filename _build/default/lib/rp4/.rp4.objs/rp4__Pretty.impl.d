lib/rp4/pretty.ml: Ast Buffer Int64 List Printf String Table
