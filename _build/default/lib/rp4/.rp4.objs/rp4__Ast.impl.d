lib/rp4/ast.ml: List Table
