(* Abstract syntax of rP4 (Fig. 2 of the paper).

   An rP4 program is stage oriented: headers carry *implicit parsers*
   (field-driven next-header dispatch), and the ingress/egress pipes are
   sequences of stages, each a parser–matcher–executor triad. [user_funcs]
   groups stages into named, loadable functions — the unit of in-situ
   insertion and removal.

   Incremental-update snippets (e.g. Fig. 5(a)) are also programs: they
   carry only the new tables/actions/stages, and name resolution happens
   against the base design at load time. *)

type width = int

type field_ref =
  | Hdr_field of string * string (* ethernet.dst_addr *)
  | Meta_field of string (* meta.nexthop *)

let field_ref_to_string = function
  | Hdr_field (h, f) -> h ^ "." ^ f
  | Meta_field f -> "meta." ^ f

(* ------------------------------------------------------------------ *)
(* Expressions and conditions                                          *)
(* ------------------------------------------------------------------ *)

type binop = Add | Sub | Band | Bor | Bxor

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"

type expr =
  | E_const of int64 * width option (* value, optional explicit width *)
  | E_field of field_ref
  | E_param of string (* action parameter *)
  | E_binop of binop * expr * expr

type relop = Eq | Neq | Lt | Gt | Le | Ge

let relop_to_string = function
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="

type cond =
  | C_valid of string (* hdr.isValid() *)
  | C_rel of relop * expr * expr
  | C_not of cond
  | C_and of cond * cond
  | C_or of cond * cond
  | C_true

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

type field_decl = { fd_name : string; fd_width : width }

(* implicit parser(sel_fields) { tag : next_header; ... } *)
type implicit_parser = {
  ip_sel : string list;
  ip_cases : (int64 * string) list;
}

type header_decl = {
  hd_name : string;
  hd_fields : field_decl list;
  hd_parser : implicit_parser option;
}

type struct_decl = {
  sd_name : string;
  sd_members : field_decl list;
  sd_alias : string option; (* instance alias, e.g. "meta" *)
}

(* Action bodies are straight-line primitive sequences, as in P4. The two
   externs beyond assignment cover the paper's use cases: [mark_exceed]
   backs the event-triggered flow probe (C3) and [drop]/[mark]/[noop] are
   the intrinsic primitives. *)
type stmt =
  | S_assign of field_ref * expr
  | S_drop
  | S_mark of expr
  | S_noop
  | S_set_valid of string
  | S_set_invalid of string
  (* mark_exceed(threshold, value): if the matched entry's hit counter
     exceeds [threshold], set meta.mark to [value]. *)
  | S_mark_exceed of expr * expr

type action_decl = {
  ad_name : string;
  ad_params : (string * width) list;
  ad_body : stmt list;
}

type table_decl = {
  td_name : string;
  td_key : (field_ref * Table.Key.match_kind) list;
  td_size : int;
}

(* ------------------------------------------------------------------ *)
(* Stages                                                              *)
(* ------------------------------------------------------------------ *)

type matcher =
  | M_apply of string (* table.apply() *)
  | M_if of cond * matcher * matcher
  | M_seq of matcher list
  | M_nop

(* executor { tag : actions; ...; default : actions } *)
type executor = {
  ex_cases : (int * string list) list;
  ex_default : string list;
}

type stage_decl = {
  st_name : string;
  st_parser : string list; (* header instances this stage may parse *)
  st_matcher : matcher;
  st_executor : executor;
}

type func_decl = { fn_name : string; fn_stages : string list }

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

type program = {
  headers : header_decl list;
  structs : struct_decl list;
  actions : action_decl list;
  tables : table_decl list;
  ingress : stage_decl list;
  egress : stage_decl list;
  (* Stages declared outside a control block — update snippets. *)
  loose_stages : stage_decl list;
  funcs : func_decl list;
  ingress_entry : string option;
  egress_entry : string option;
}

let empty_program =
  {
    headers = [];
    structs = [];
    actions = [];
    tables = [];
    ingress = [];
    egress = [];
    loose_stages = [];
    funcs = [];
    ingress_entry = None;
    egress_entry = None;
  }

let all_stages p = p.ingress @ p.egress @ p.loose_stages

let find_stage p name = List.find_opt (fun s -> s.st_name = name) (all_stages p)
let find_table p name = List.find_opt (fun t -> t.td_name = name) p.tables
let find_action p name = List.find_opt (fun a -> a.ad_name = name) p.actions
let find_header p name = List.find_opt (fun h -> h.hd_name = name) p.headers
let find_func p name = List.find_opt (fun f -> f.fn_name = name) p.funcs

(* Tables applied by a matcher, in order of appearance. *)
let rec matcher_tables = function
  | M_apply t -> [ t ]
  | M_if (_, a, b) -> matcher_tables a @ matcher_tables b
  | M_seq ms -> List.concat_map matcher_tables ms
  | M_nop -> []

(* Header instances a condition inspects. *)
let rec cond_headers = function
  | C_valid h -> [ h ]
  | C_rel (_, a, b) -> expr_headers a @ expr_headers b
  | C_not c -> cond_headers c
  | C_and (a, b) | C_or (a, b) -> cond_headers a @ cond_headers b
  | C_true -> []

and expr_headers = function
  | E_const _ | E_param _ -> []
  | E_field (Hdr_field (h, _)) -> [ h ]
  | E_field (Meta_field _) -> []
  | E_binop (_, a, b) -> expr_headers a @ expr_headers b

(* Field references read by an expression / condition. *)
let rec expr_reads = function
  | E_const _ | E_param _ -> []
  | E_field fr -> [ fr ]
  | E_binop (_, a, b) -> expr_reads a @ expr_reads b

let rec cond_reads = function
  | C_valid _ | C_true -> []
  | C_rel (_, a, b) -> expr_reads a @ expr_reads b
  | C_not c -> cond_reads c
  | C_and (a, b) | C_or (a, b) -> cond_reads a @ cond_reads b

let stmt_reads = function
  | S_assign (_, e) -> expr_reads e
  | S_mark e -> expr_reads e
  | S_mark_exceed (a, b) -> expr_reads a @ expr_reads b
  | S_drop | S_noop | S_set_valid _ | S_set_invalid _ -> []

let stmt_writes = function
  | S_assign (fr, _) -> [ fr ]
  | S_mark _ | S_mark_exceed _ -> [ Meta_field "mark" ]
  | S_drop -> [ Meta_field "drop" ]
  | S_noop | S_set_valid _ | S_set_invalid _ -> []
