(* Semantic analysis for rP4 programs and update snippets.

   A snippet (the unit of in-situ update) references names from the base
   design, so checking happens against a *combined* program: base merged
   with snippet. [build] returns an environment with resolved widths that
   the back-end compiler consumes; all diagnostics are collected rather
   than failing on the first. *)

open Ast

type env = {
  prog : program; (* merged program *)
  meta_widths : (string, int) Hashtbl.t;
}

let intrinsic_meta = Net.Meta.intrinsic

(* ------------------------------------------------------------------ *)
(* Program merging (base design + snippet)                             *)
(* ------------------------------------------------------------------ *)

let merge_by_name ~what ~name_of errors base extra =
  let out = ref (List.rev base) in
  List.iter
    (fun item ->
      let n = name_of item in
      match List.find_opt (fun b -> name_of b = n) base with
      | Some existing when existing = item -> () (* identical redefinition ok *)
      | Some _ -> errors := Printf.sprintf "%s %s: conflicting redefinition" what n :: !errors
      | None -> out := item :: !out)
    extra;
  List.rev !out

let merge errors (base : program) (snippet : program) : program =
  {
    headers =
      merge_by_name ~what:"header" ~name_of:(fun h -> h.hd_name) errors base.headers
        snippet.headers;
    structs =
      merge_by_name ~what:"struct" ~name_of:(fun s -> s.sd_name) errors base.structs
        snippet.structs;
    actions =
      merge_by_name ~what:"action" ~name_of:(fun a -> a.ad_name) errors base.actions
        snippet.actions;
    tables =
      merge_by_name ~what:"table" ~name_of:(fun t -> t.td_name) errors base.tables
        snippet.tables;
    ingress =
      merge_by_name ~what:"stage" ~name_of:(fun s -> s.st_name) errors base.ingress
        snippet.ingress;
    egress =
      merge_by_name ~what:"stage" ~name_of:(fun s -> s.st_name) errors base.egress
        snippet.egress;
    loose_stages =
      merge_by_name ~what:"stage" ~name_of:(fun s -> s.st_name) errors base.loose_stages
        snippet.loose_stages;
    funcs =
      merge_by_name ~what:"func" ~name_of:(fun f -> f.fn_name) errors base.funcs
        snippet.funcs;
    ingress_entry =
      (match snippet.ingress_entry with Some _ as e -> e | None -> base.ingress_entry);
    egress_entry =
      (match snippet.egress_entry with Some _ as e -> e | None -> base.egress_entry);
  }

(* ------------------------------------------------------------------ *)
(* Checks                                                              *)
(* ------------------------------------------------------------------ *)

let check_unique ~what names errors =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then errors := Printf.sprintf "duplicate %s %s" what n :: !errors
      else Hashtbl.add seen n ())
    names

let meta_widths_of prog =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (n, w) -> Hashtbl.replace tbl n w) intrinsic_meta;
  List.iter
    (fun s -> List.iter (fun f -> Hashtbl.replace tbl f.fd_name f.fd_width) s.sd_members)
    prog.structs;
  tbl

let field_width env = function
  | Meta_field f -> Hashtbl.find_opt env.meta_widths f
  | Hdr_field (h, f) -> (
    match find_header env.prog h with
    | None -> None
    | Some hd ->
      List.find_map
        (fun fd -> if fd.fd_name = f then Some fd.fd_width else None)
        hd.hd_fields)

let check_field_ref env ~ctx errors fr =
  match field_width env fr with
  | Some _ -> ()
  | None ->
    errors := Printf.sprintf "%s: unknown field %s" ctx (field_ref_to_string fr) :: !errors

let rec check_expr env ~ctx ~params errors = function
  | E_const _ -> ()
  | E_field fr -> check_field_ref env ~ctx errors fr
  | E_param p ->
    if not (List.mem_assoc p params) then
      errors := Printf.sprintf "%s: unknown parameter %s" ctx p :: !errors
  | E_binop (_, a, b) ->
    check_expr env ~ctx ~params errors a;
    check_expr env ~ctx ~params errors b

let rec check_cond env ~ctx errors = function
  | C_valid h ->
    if find_header env.prog h = None then
      errors := Printf.sprintf "%s: isValid on unknown header %s" ctx h :: !errors
  | C_rel (_, a, b) ->
    check_expr env ~ctx ~params:[] errors a;
    check_expr env ~ctx ~params:[] errors b
  | C_not c -> check_cond env ~ctx errors c
  | C_and (a, b) | C_or (a, b) ->
    check_cond env ~ctx errors a;
    check_cond env ~ctx errors b
  | C_true -> ()

let check_header env errors (h : header_decl) =
  let ctx = Printf.sprintf "header %s" h.hd_name in
  check_unique ~what:(ctx ^ " field") (List.map (fun f -> f.fd_name) h.hd_fields) errors;
  List.iter
    (fun f ->
      if f.fd_width <= 0 || f.fd_width > 1024 then
        errors := Printf.sprintf "%s: field %s has invalid width %d" ctx f.fd_name f.fd_width :: !errors)
    h.hd_fields;
  match h.hd_parser with
  | None -> ()
  | Some ip ->
    List.iter
      (fun sel ->
        if not (List.exists (fun f -> f.fd_name = sel) h.hd_fields) then
          errors := Printf.sprintf "%s: selector field %s undeclared" ctx sel :: !errors)
      ip.ip_sel;
    if ip.ip_sel = [] then errors := Printf.sprintf "%s: empty selector" ctx :: !errors;
    List.iter
      (fun (_, next) ->
        if find_header env.prog next = None then
          errors := Printf.sprintf "%s: implicit parser targets unknown header %s" ctx next :: !errors)
      ip.ip_cases;
    check_unique ~what:(ctx ^ " parser tag")
      (List.map (fun (tag, _) -> Int64.to_string tag) ip.ip_cases)
      errors

let check_action env errors (a : action_decl) =
  let ctx = Printf.sprintf "action %s" a.ad_name in
  check_unique ~what:(ctx ^ " param") (List.map fst a.ad_params) errors;
  List.iter
    (fun stmt ->
      (match stmt with
      | S_assign (fr, _) -> check_field_ref env ~ctx errors fr
      | S_set_valid h | S_set_invalid h ->
        if find_header env.prog h = None then
          errors := Printf.sprintf "%s: unknown header %s" ctx h :: !errors
      | _ -> ());
      List.iter
        (function
          | E_param _ as e -> check_expr env ~ctx ~params:a.ad_params errors e
          | _ -> ())
        [];
      match stmt with
      | S_assign (_, e) | S_mark e -> check_expr env ~ctx ~params:a.ad_params errors e
      | S_mark_exceed (e1, e2) ->
        check_expr env ~ctx ~params:a.ad_params errors e1;
        check_expr env ~ctx ~params:a.ad_params errors e2
      | _ -> ())
    a.ad_body

let check_table env errors (t : table_decl) =
  let ctx = Printf.sprintf "table %s" t.td_name in
  if t.td_key = [] then errors := Printf.sprintf "%s: empty key" ctx :: !errors;
  if t.td_size <= 0 then errors := Printf.sprintf "%s: non-positive size" ctx :: !errors;
  List.iter (fun (fr, _) -> check_field_ref env ~ctx errors fr) t.td_key

let check_stage env errors (s : stage_decl) =
  let ctx = Printf.sprintf "stage %s" s.st_name in
  List.iter
    (fun h ->
      if find_header env.prog h = None then
        errors := Printf.sprintf "%s: parser lists unknown header %s" ctx h :: !errors)
    s.st_parser;
  let rec walk = function
    | M_apply t ->
      if find_table env.prog t = None then
        errors := Printf.sprintf "%s: applies unknown table %s" ctx t :: !errors
    | M_if (c, a, b) ->
      check_cond env ~ctx errors c;
      walk a;
      walk b
    | M_seq ms -> List.iter walk ms
    | M_nop -> ()
  in
  walk s.st_matcher;
  check_unique ~what:(ctx ^ " executor tag")
    (List.map (fun (tag, _) -> string_of_int tag) s.st_executor.ex_cases)
    errors;
  let check_act name =
    if name <> "NoAction" && find_action env.prog name = None then
      errors := Printf.sprintf "%s: executor references unknown action %s" ctx name :: !errors
  in
  List.iter (fun (_, acts) -> List.iter check_act acts) s.st_executor.ex_cases;
  List.iter check_act s.st_executor.ex_default

let check_funcs _env errors (p : program) =
  List.iter
    (fun f ->
      List.iter
        (fun sname ->
          if find_stage p sname = None then
            errors := Printf.sprintf "func %s: unknown stage %s" f.fn_name sname :: !errors)
        f.fn_stages)
    p.funcs;
  (match p.ingress_entry with
  | Some e when find_stage p e = None ->
    errors := Printf.sprintf "ingress_entry: unknown stage %s" e :: !errors
  | _ -> ());
  match p.egress_entry with
  | Some e when find_stage p e = None ->
    errors := Printf.sprintf "egress_entry: unknown stage %s" e :: !errors
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let build ?(base = empty_program) (snippet : program) : (env, string list) result =
  let errors = ref [] in
  let prog = merge errors base snippet in
  let env = { prog; meta_widths = meta_widths_of prog } in
  check_unique ~what:"header" (List.map (fun h -> h.hd_name) prog.headers) errors;
  check_unique ~what:"struct" (List.map (fun s -> s.sd_name) prog.structs) errors;
  check_unique ~what:"action" (List.map (fun a -> a.ad_name) prog.actions) errors;
  check_unique ~what:"table" (List.map (fun t -> t.td_name) prog.tables) errors;
  check_unique ~what:"stage" (List.map (fun s -> s.st_name) (all_stages prog)) errors;
  check_unique ~what:"func" (List.map (fun f -> f.fn_name) prog.funcs) errors;
  List.iter (check_header env errors) prog.headers;
  List.iter (check_action env errors) prog.actions;
  List.iter (check_table env errors) prog.tables;
  List.iter (check_stage env errors) (all_stages prog);
  check_funcs env errors prog;
  match !errors with
  | [] -> Ok env
  | errs -> Error (List.rev errs)

(* Key spec for the table library, widths resolved from the env. *)
let key_spec env (t : table_decl) : Table.Key.field list =
  List.map
    (fun (fr, kind) ->
      let width =
        match field_width env fr with
        | Some w -> w
        | None -> invalid_arg ("Semantic.key_spec: unknown field " ^ field_ref_to_string fr)
      in
      { Table.Key.kf_ref = field_ref_to_string fr; kf_width = width; kf_kind = kind })
    t.td_key

(* Width of an action's argument vector, for memory sizing. *)
let action_args_width (a : action_decl) =
  List.fold_left (fun acc (_, w) -> acc + w) 0 a.ad_params

(* Entry width of a table: key bits + the widest argument vector among the
   actions the hosting stages may execute, approximated by all actions in
   the program that any executor pairs with this table's stage. For memory
   sizing we use key + 64 bits of action data headroom when unknown. *)
let entry_width env (t : table_decl) =
  let key_bits =
    List.fold_left
      (fun acc (fr, _) ->
        acc + match field_width env fr with Some w -> w | None -> 0)
      0 t.td_key
  in
  (* locate stages applying this table, take their executors' max args *)
  let max_args =
    List.fold_left
      (fun acc s ->
        if List.mem t.td_name (matcher_tables s.st_matcher) then
          let acts =
            List.concat_map snd s.st_executor.ex_cases @ s.st_executor.ex_default
          in
          List.fold_left
            (fun acc name ->
              match find_action env.prog name with
              | Some a -> max acc (action_args_width a)
              | None -> acc)
            acc acts
        else acc)
      0 (all_stages env.prog)
  in
  key_bits + (if max_args = 0 then 16 else max_args) + 16 (* tag bits *)
