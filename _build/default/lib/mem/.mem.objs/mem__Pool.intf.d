lib/mem/pool.mli:
