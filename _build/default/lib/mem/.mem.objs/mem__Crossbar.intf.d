lib/mem/crossbar.mli:
