lib/mem/pool.ml: Array Int List Printf
