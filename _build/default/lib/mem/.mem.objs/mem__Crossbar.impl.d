lib/mem/crossbar.ml: Hashtbl Int List Printf
