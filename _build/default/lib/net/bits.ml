(* Arbitrary-width bit vectors.

   This is the universal value type of the data plane: header field values,
   table keys, action arguments and metadata are all [Bits.t]. A value of
   width [w] is stored right-aligned in [ceil(w/8)] bytes, big-endian, with
   the unused high bits of byte 0 kept at zero (the normalised form), so
   that structural equality and lexicographic comparison coincide with
   numeric equality and ordering for equal widths.

   Bit index 0 refers to the most significant bit of the value, matching
   the order in which fields appear in a header definition. *)

type t = { width : int; data : string }

let width t = t.width

let nbytes_of_width w = (w + 7) / 8

(* Zero out the unused high bits of byte 0. *)
let normalize ~width data =
  let nbytes = nbytes_of_width width in
  assert (String.length data = nbytes);
  let pad = (8 * nbytes) - width in
  if pad = 0 || nbytes = 0 then data
  else begin
    let b = Bytes.of_string data in
    let mask = 0xFF lsr pad in
    Bytes.set_uint8 b 0 (Bytes.get_uint8 b 0 land mask);
    Bytes.unsafe_to_string b
  end

let create ~width data =
  if width < 0 then invalid_arg "Bits.create: negative width";
  if String.length data <> nbytes_of_width width then
    invalid_arg
      (Printf.sprintf "Bits.create: width %d needs %d bytes, got %d" width
         (nbytes_of_width width) (String.length data));
  { width; data = normalize ~width data }

let zero width = { width; data = String.make (nbytes_of_width width) '\000' }

let ones width =
  create ~width (String.make (nbytes_of_width width) '\255')

let of_int64 ~width v =
  let nbytes = nbytes_of_width width in
  let b = Bytes.make nbytes '\000' in
  for i = 0 to min nbytes 8 - 1 do
    let shift = 8 * i in
    Bytes.set_uint8 b
      (nbytes - 1 - i)
      (Int64.to_int (Int64.logand (Int64.shift_right_logical v shift) 0xFFL))
  done;
  create ~width (Bytes.unsafe_to_string b)

let of_int ~width v = of_int64 ~width (Int64.of_int v)

(* Low 64 bits of the value; widths beyond 64 bits are truncated, which is
   what every numeric consumer (hashing, arithmetic on counters) wants. *)
let to_int64 t =
  let nbytes = String.length t.data in
  let acc = ref 0L in
  for i = max 0 (nbytes - 8) to nbytes - 1 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code t.data.[i]))
  done;
  !acc

let to_int t = Int64.to_int (to_int64 t)

let of_string ~width s = create ~width s
let to_raw_string t = t.data

let of_hex ~width hex = create ~width (Prelude.Hex.to_string hex)
let to_hex t = Prelude.Hex.of_string t.data

let equal a b = a.width = b.width && String.equal a.data b.data

let compare a b =
  match Int.compare a.width b.width with
  | 0 -> String.compare a.data b.data
  | c -> c

let is_zero t = String.for_all (fun c -> c = '\000') t.data

(* Bit [i] of the value, where bit 0 is the MSB. *)
let get_bit t i =
  if i < 0 || i >= t.width then invalid_arg "Bits.get_bit: out of range";
  let pad = (8 * String.length t.data) - t.width in
  let pos = pad + i in
  let byte = Char.code t.data.[pos / 8] in
  byte land (1 lsl (7 - (pos mod 8))) <> 0

(* Build a [width]-bit value from a bit predicate (bit 0 = MSB). *)
let init width f =
  let nbytes = nbytes_of_width width in
  let b = Bytes.make nbytes '\000' in
  let pad = (8 * nbytes) - width in
  for i = 0 to width - 1 do
    if f i then begin
      let pos = pad + i in
      let idx = pos / 8 in
      Bytes.set_uint8 b idx (Bytes.get_uint8 b idx lor (1 lsl (7 - (pos mod 8))))
    end
  done;
  { width; data = Bytes.unsafe_to_string b }

let concat a b =
  init (a.width + b.width) (fun i ->
      if i < a.width then get_bit a i else get_bit b (i - a.width))

let concat_list = function
  | [] -> zero 0
  | x :: rest -> List.fold_left concat x rest

(* Bits [off, off+len) of the value. *)
let slice t ~off ~len =
  if off < 0 || len < 0 || off + len > t.width then
    invalid_arg
      (Printf.sprintf "Bits.slice: [%d,%d) out of width %d" off (off + len) t.width);
  init len (fun i -> get_bit t (off + i))

let map2 name f a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bits.%s: width mismatch (%d vs %d)" name a.width b.width);
  let n = String.length a.data in
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set_uint8 out i (f (Char.code a.data.[i]) (Char.code b.data.[i]))
  done;
  { width = a.width; data = normalize ~width:a.width (Bytes.unsafe_to_string out) }

let logand = map2 "logand" ( land )
let logor = map2 "logor" ( lor )
let logxor = map2 "logxor" ( lxor )

let lognot t =
  let n = String.length t.data in
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set_uint8 out i (lnot (Char.code t.data.[i]) land 0xFF)
  done;
  { width = t.width; data = normalize ~width:t.width (Bytes.unsafe_to_string out) }

(* Modular addition over 2^width, byte-wise with carry. *)
let add a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bits.add: width mismatch (%d vs %d)" a.width b.width);
  let n = String.length a.data in
  let out = Bytes.create n in
  let carry = ref 0 in
  for i = n - 1 downto 0 do
    let s = Char.code a.data.[i] + Char.code b.data.[i] + !carry in
    Bytes.set_uint8 out i (s land 0xFF);
    carry := s lsr 8
  done;
  { width = a.width; data = normalize ~width:a.width (Bytes.unsafe_to_string out) }

let sub a b = add a (add (lognot b) (of_int ~width:b.width 1))

let succ t = add t (of_int ~width:t.width 1)
let pred t = sub t (of_int ~width:t.width 1)

(* Zero-extend or truncate (keeping the low bits) to a new width. *)
let resize t width =
  if width = t.width then t
  else if width > t.width then concat (zero (width - t.width)) t
  else slice t ~off:(t.width - width) ~len:width

(* Ternary match: does [v] match [value] under [mask]? A set mask bit means
   the corresponding value bit must match. *)
let matches_ternary ~value ~mask v =
  equal (logand v mask) (logand value mask)

let to_string t = Printf.sprintf "0x%s/%d" (to_hex t) t.width

let pp fmt t = Format.pp_print_string fmt (to_string t)

let hash t = Prelude.Xxh.digest_int t.data
