(* Concrete protocol header codecs.

   The switch data plane is protocol independent; these codecs exist so
   that tests, examples and the traffic generator can build and inspect
   real packets (Ethernet / VLAN / IPv4 / IPv6 / SRH / UDP / TCP) without
   hand-assembling bytes. Each [to_string] emits wire bytes; each
   [of_string ~off] decodes the header starting at byte offset [off]. *)

let ethertype_ipv4 = 0x0800
let ethertype_ipv6 = 0x86DD
let ethertype_vlan = 0x8100
let proto_tcp = 6
let proto_udp = 17
let next_header_srh = 43
let next_header_ipv4 = 4
let next_header_ipv6 = 41

module Eth = struct
  type t = { dst : Addr.Mac.t; src : Addr.Mac.t; ethertype : int }

  let size = 14

  let to_string t =
    let b = Bytes.create size in
    Bytes.blit_string (Addr.Mac.to_raw t.dst) 0 b 0 6;
    Bytes.blit_string (Addr.Mac.to_raw t.src) 0 b 6 6;
    Bytes.set_uint16_be b 12 t.ethertype;
    Bytes.unsafe_to_string b

  let of_string ?(off = 0) s =
    {
      dst = Addr.Mac.of_raw (String.sub s off 6);
      src = Addr.Mac.of_raw (String.sub s (off + 6) 6);
      ethertype = (Char.code s.[off + 12] lsl 8) lor Char.code s.[off + 13];
    }
end

module Vlan = struct
  type t = { pcp : int; dei : int; vid : int; ethertype : int }

  let size = 4

  let to_string t =
    let b = Bytes.create size in
    Bytes.set_uint16_be b 0
      (((t.pcp land 0x7) lsl 13) lor ((t.dei land 1) lsl 12) lor (t.vid land 0xFFF));
    Bytes.set_uint16_be b 2 t.ethertype;
    Bytes.unsafe_to_string b

  let of_string ?(off = 0) s =
    let tci = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1] in
    {
      pcp = tci lsr 13;
      dei = (tci lsr 12) land 1;
      vid = tci land 0xFFF;
      ethertype = (Char.code s.[off + 2] lsl 8) lor Char.code s.[off + 3];
    }
end

module Ipv4 = struct
  type t = {
    dscp : int;
    ecn : int;
    total_len : int;
    ident : int;
    flags : int;
    frag_off : int;
    ttl : int;
    protocol : int;
    src : Addr.Ipv4.t;
    dst : Addr.Ipv4.t;
  }

  let size = 20 (* no options in the test substrate *)

  let make ?(dscp = 0) ?(ecn = 0) ?(ident = 0) ?(flags = 2) ?(frag_off = 0) ?(ttl = 64)
      ~protocol ~src ~dst ~payload_len () =
    { dscp; ecn; total_len = size + payload_len; ident; flags; frag_off; ttl; protocol;
      src; dst }

  let to_string t =
    let b = Bytes.create size in
    Bytes.set_uint8 b 0 ((4 lsl 4) lor 5);
    Bytes.set_uint8 b 1 ((t.dscp lsl 2) lor t.ecn);
    Bytes.set_uint16_be b 2 t.total_len;
    Bytes.set_uint16_be b 4 t.ident;
    Bytes.set_uint16_be b 6 ((t.flags lsl 13) lor t.frag_off);
    Bytes.set_uint8 b 8 t.ttl;
    Bytes.set_uint8 b 9 t.protocol;
    Bytes.set_uint16_be b 10 0;
    Bytes.set_int32_be b 12 t.src;
    Bytes.set_int32_be b 16 t.dst;
    let csum = Checksum.compute (Bytes.to_string b) in
    Bytes.set_uint16_be b 10 csum;
    Bytes.unsafe_to_string b

  let of_string ?(off = 0) s =
    let u8 i = Char.code s.[off + i] in
    let u16 i = (u8 i lsl 8) lor u8 (i + 1) in
    let u32 i =
      Int32.logor
        (Int32.shift_left (Int32.of_int (u16 i)) 16)
        (Int32.of_int (u16 (i + 2)))
    in
    {
      dscp = u8 1 lsr 2;
      ecn = u8 1 land 3;
      total_len = u16 2;
      ident = u16 4;
      flags = u16 6 lsr 13;
      frag_off = u16 6 land 0x1FFF;
      ttl = u8 8;
      protocol = u8 9;
      src = u32 12;
      dst = u32 16;
    }
end

module Ipv6 = struct
  type t = {
    traffic_class : int;
    flow_label : int;
    payload_len : int;
    next_header : int;
    hop_limit : int;
    src : Addr.Ipv6.t;
    dst : Addr.Ipv6.t;
  }

  let size = 40

  let make ?(traffic_class = 0) ?(flow_label = 0) ?(hop_limit = 64) ~next_header ~src
      ~dst ~payload_len () =
    { traffic_class; flow_label; payload_len; next_header; hop_limit; src; dst }

  let to_string t =
    let b = Bytes.create size in
    let word0 =
      Int32.logor
        (Int32.shift_left 6l 28)
        (Int32.of_int ((t.traffic_class lsl 20) lor (t.flow_label land 0xFFFFF)))
    in
    Bytes.set_int32_be b 0 word0;
    Bytes.set_uint16_be b 4 t.payload_len;
    Bytes.set_uint8 b 6 t.next_header;
    Bytes.set_uint8 b 7 t.hop_limit;
    Bytes.blit_string (Addr.Ipv6.to_raw t.src) 0 b 8 16;
    Bytes.blit_string (Addr.Ipv6.to_raw t.dst) 0 b 24 16;
    Bytes.unsafe_to_string b

  let of_string ?(off = 0) s =
    let u8 i = Char.code s.[off + i] in
    let u16 i = (u8 i lsl 8) lor u8 (i + 1) in
    {
      traffic_class = ((u8 0 land 0xF) lsl 4) lor (u8 1 lsr 4);
      flow_label = ((u8 1 land 0xF) lsl 16) lor u16 2;
      payload_len = u16 4;
      next_header = u8 6;
      hop_limit = u8 7;
      src = Addr.Ipv6.of_raw (String.sub s (off + 8) 16);
      dst = Addr.Ipv6.of_raw (String.sub s (off + 24) 16);
    }
end

module Srh = struct
  (* IPv6 Segment Routing Header, RFC 8754. *)
  type t = {
    next_header : int;
    segments_left : int;
    last_entry : int;
    flags : int;
    tag : int;
    segments : Addr.Ipv6.t array;
  }

  let size t = 8 + (16 * Array.length t.segments)
  let size_of_segments n = 8 + (16 * n)

  let make ~next_header ~segments_left ~segments () =
    {
      next_header;
      segments_left;
      last_entry = Array.length segments - 1;
      flags = 0;
      tag = 0;
      segments;
    }

  let to_string t =
    let n = Array.length t.segments in
    let b = Bytes.create (size t) in
    Bytes.set_uint8 b 0 t.next_header;
    Bytes.set_uint8 b 1 (2 * n) (* hdr ext len in 8-byte units, excluding first 8 *);
    Bytes.set_uint8 b 2 4 (* routing type: segment routing *);
    Bytes.set_uint8 b 3 t.segments_left;
    Bytes.set_uint8 b 4 t.last_entry;
    Bytes.set_uint8 b 5 t.flags;
    Bytes.set_uint16_be b 6 t.tag;
    Array.iteri
      (fun i seg -> Bytes.blit_string (Addr.Ipv6.to_raw seg) 0 b (8 + (16 * i)) 16)
      t.segments;
    Bytes.unsafe_to_string b

  let of_string ?(off = 0) s =
    let u8 i = Char.code s.[off + i] in
    let hdr_ext_len = u8 1 in
    let n = hdr_ext_len / 2 in
    {
      next_header = u8 0;
      segments_left = u8 3;
      last_entry = u8 4;
      flags = u8 5;
      tag = (u8 6 lsl 8) lor u8 7;
      segments =
        Array.init n (fun i -> Addr.Ipv6.of_raw (String.sub s (off + 8 + (16 * i)) 16));
    }
end

module Udp = struct
  type t = { src_port : int; dst_port : int; length : int; checksum : int }

  let size = 8

  let make ~src_port ~dst_port ~payload_len () =
    { src_port; dst_port; length = size + payload_len; checksum = 0 }

  let to_string t =
    let b = Bytes.create size in
    Bytes.set_uint16_be b 0 t.src_port;
    Bytes.set_uint16_be b 2 t.dst_port;
    Bytes.set_uint16_be b 4 t.length;
    Bytes.set_uint16_be b 6 t.checksum;
    Bytes.unsafe_to_string b

  let of_string ?(off = 0) s =
    let u16 i = (Char.code s.[off + i] lsl 8) lor Char.code s.[off + i + 1] in
    { src_port = u16 0; dst_port = u16 2; length = u16 4; checksum = u16 6 }
end

module Tcp = struct
  type t = {
    src_port : int;
    dst_port : int;
    seq : int32;
    ack : int32;
    flags : int;
    window : int;
  }

  let size = 20

  let make ?(seq = 0l) ?(ack = 0l) ?(flags = 0x10) ?(window = 65535) ~src_port ~dst_port
      () =
    { src_port; dst_port; seq; ack; flags; window }

  let to_string t =
    let b = Bytes.create size in
    Bytes.set_uint16_be b 0 t.src_port;
    Bytes.set_uint16_be b 2 t.dst_port;
    Bytes.set_int32_be b 4 t.seq;
    Bytes.set_int32_be b 8 t.ack;
    Bytes.set_uint8 b 12 (5 lsl 4);
    Bytes.set_uint8 b 13 t.flags;
    Bytes.set_uint16_be b 14 t.window;
    Bytes.set_uint16_be b 16 0;
    Bytes.set_uint16_be b 18 0;
    Bytes.unsafe_to_string b

  let of_string ?(off = 0) s =
    let u8 i = Char.code s.[off + i] in
    let u16 i = (u8 i lsl 8) lor u8 (i + 1) in
    let u32 i =
      Int32.logor
        (Int32.shift_left (Int32.of_int (u16 i)) 16)
        (Int32.of_int (u16 (i + 2)))
    in
    {
      src_port = u16 0;
      dst_port = u16 2;
      seq = u32 4;
      ack = u32 8;
      flags = u8 13;
      window = u16 14;
    }
end
