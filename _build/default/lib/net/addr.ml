(* Network address types: 48-bit MAC, 32-bit IPv4, 128-bit IPv6.

   These are the concrete address types used by the test traffic
   generators and by the protocol header codecs. The data plane itself is
   protocol independent and only ever sees [Bits.t] values. *)

module Mac = struct
  type t = string (* exactly 6 bytes *)

  let of_string_exn s =
    let parts = String.split_on_char ':' s in
    if List.length parts <> 6 then invalid_arg ("Mac.of_string: " ^ s);
    String.concat ""
      (List.map
         (fun p ->
           if String.length p <> 2 then invalid_arg ("Mac.of_string: " ^ s);
           String.make 1 (Char.chr (int_of_string ("0x" ^ p))))
         parts)

  let to_string t =
    String.concat ":" (List.init 6 (fun i -> Printf.sprintf "%02x" (Char.code t.[i])))

  let of_raw s =
    if String.length s <> 6 then invalid_arg "Mac.of_raw: need 6 bytes";
    s

  let to_raw t = t
  let to_bits t = Bits.of_string ~width:48 t
  let of_bits b =
    if Bits.width b <> 48 then invalid_arg "Mac.of_bits: need 48 bits";
    Bits.to_raw_string b

  let broadcast = String.make 6 '\255'
  let zero = String.make 6 '\000'
  let equal = String.equal
  let compare = String.compare

  (* Deterministic locally-administered MAC derived from an index. *)
  let of_index i =
    let b = Bytes.make 6 '\000' in
    Bytes.set_uint8 b 0 0x02;
    Bytes.set_uint8 b 2 ((i lsr 24) land 0xFF);
    Bytes.set_uint8 b 3 ((i lsr 16) land 0xFF);
    Bytes.set_uint8 b 4 ((i lsr 8) land 0xFF);
    Bytes.set_uint8 b 5 (i land 0xFF);
    Bytes.unsafe_to_string b
end

module Ipv4 = struct
  type t = int32

  let of_string_exn s =
    match String.split_on_char '.' s with
    | [ a; b; c; d ] ->
      let p x =
        let v = int_of_string x in
        if v < 0 || v > 255 then invalid_arg ("Ipv4.of_string: " ^ s);
        v
      in
      Int32.of_int (((p a) lsl 24) lor ((p b) lsl 16) lor ((p c) lsl 8) lor p d)
    | _ -> invalid_arg ("Ipv4.of_string: " ^ s)

  let to_string t =
    let v = Int32.to_int (Int32.logand t 0xFFFFFFFFl) land 0xFFFFFFFF in
    Printf.sprintf "%d.%d.%d.%d" ((v lsr 24) land 0xFF) ((v lsr 16) land 0xFF)
      ((v lsr 8) land 0xFF) (v land 0xFF)

  let to_bits t = Bits.of_int64 ~width:32 (Int64.logand (Int64.of_int32 t) 0xFFFFFFFFL)
  let of_bits b =
    if Bits.width b <> 32 then invalid_arg "Ipv4.of_bits: need 32 bits";
    Int64.to_int32 (Bits.to_int64 b)

  let of_int i = Int32.of_int i
  let equal = Int32.equal
  let compare = Int32.compare
end

module Ipv6 = struct
  type t = string (* exactly 16 bytes *)

  let of_raw s =
    if String.length s <> 16 then invalid_arg "Ipv6.of_raw: need 16 bytes";
    s

  let to_raw t = t

  (* Parse the full and [::]-compressed textual forms. *)
  let of_string_exn s =
    let groups_of part =
      if part = "" then []
      else
        List.map
          (fun g ->
            match int_of_string_opt ("0x" ^ g) with
            | Some v when v >= 0 && v <= 0xFFFF -> v
            | _ -> invalid_arg ("Ipv6.of_string: " ^ s))
          (String.split_on_char ':' part)
    in
    (* Locate a "::" marker, if any. *)
    let double =
      let rec find i =
        if i + 1 >= String.length s then None
        else if s.[i] = ':' && s.[i + 1] = ':' then Some i
        else find (i + 1)
      in
      find 0
    in
    let groups =
      match double with
      | Some i ->
        let left = groups_of (String.sub s 0 i) in
        let right = groups_of (String.sub s (i + 2) (String.length s - i - 2)) in
        let fill = 8 - List.length left - List.length right in
        if fill < 0 then invalid_arg ("Ipv6.of_string: " ^ s);
        left @ List.init fill (fun _ -> 0) @ right
      | None -> groups_of s
    in
    if List.length groups <> 8 then invalid_arg ("Ipv6.of_string: " ^ s);
    let b = Bytes.create 16 in
    List.iteri (fun i g -> Bytes.set_uint16_be b (2 * i) g) groups;
    Bytes.unsafe_to_string b

  let to_string t =
    String.concat ":"
      (List.init 8 (fun i ->
           Printf.sprintf "%x" (Char.code t.[2 * i] lsl 8 lor Char.code t.[(2 * i) + 1])))

  let to_bits t = Bits.of_string ~width:128 t
  let of_bits b =
    if Bits.width b <> 128 then invalid_arg "Ipv6.of_bits: need 128 bits";
    Bits.to_raw_string b

  let zero = String.make 16 '\000'
  let equal = String.equal
  let compare = String.compare

  (* Deterministic test address: 2001:db8::<i> *)
  let of_index i =
    let b = Bytes.make 16 '\000' in
    Bytes.set_uint16_be b 0 0x2001;
    Bytes.set_uint16_be b 2 0x0db8;
    Bytes.set_uint16_be b 12 ((i lsr 16) land 0xFFFF);
    Bytes.set_uint16_be b 14 (i land 0xFFFF);
    Bytes.unsafe_to_string b
end
