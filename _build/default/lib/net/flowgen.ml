(* Deterministic traffic generation for tests, examples and benchmarks.

   Builds complete wire-format packets for the paper's use cases: plain L2
   frames, IPv4/IPv6 unicast (UDP or TCP payloads), and SRv6-encapsulated
   traffic carrying an SRH. All randomness comes from a seeded [Prelude.Rng]
   so every run sees the same packet stream. *)

type flow = {
  src_mac : Addr.Mac.t;
  dst_mac : Addr.Mac.t;
  src_ip4 : Addr.Ipv4.t;
  dst_ip4 : Addr.Ipv4.t;
  src_ip6 : Addr.Ipv6.t;
  dst_ip6 : Addr.Ipv6.t;
  sport : int;
  dport : int;
}

let make_flow ?(src_mac = Addr.Mac.of_index 1) ?(dst_mac = Addr.Mac.of_index 2)
    ?(src_ip4 = Addr.Ipv4.of_string_exn "10.0.0.1")
    ?(dst_ip4 = Addr.Ipv4.of_string_exn "10.0.1.1")
    ?(src_ip6 = Addr.Ipv6.of_index 1) ?(dst_ip6 = Addr.Ipv6.of_index 2) ?(sport = 1024)
    ?(dport = 80) () =
  { src_mac; dst_mac; src_ip4; dst_ip4; src_ip6; dst_ip6; sport; dport }

(* A flow with addresses derived deterministically from an index, giving a
   spread of MACs, prefixes and ports. *)
let flow_of_index i =
  {
    src_mac = Addr.Mac.of_index (1000 + i);
    dst_mac = Addr.Mac.of_index (2000 + i);
    src_ip4 = Addr.Ipv4.of_int (0x0A000000 lor (i land 0xFFFF));
    dst_ip4 = Addr.Ipv4.of_int (0x0A010000 lor (i land 0xFFFF));
    src_ip6 = Addr.Ipv6.of_index (1000 + i);
    dst_ip6 = Addr.Ipv6.of_index (2000 + i);
    sport = 1024 + (i mod 40000);
    dport = 80 + (i mod 16);
  }

let random_flow rng =
  {
    src_mac = Addr.Mac.of_index (Prelude.Rng.int rng 1_000_000);
    dst_mac = Addr.Mac.of_index (Prelude.Rng.int rng 1_000_000);
    src_ip4 = Prelude.Rng.int32 rng;
    dst_ip4 = Prelude.Rng.int32 rng;
    src_ip6 = Addr.Ipv6.of_index (Prelude.Rng.int rng 1_000_000);
    dst_ip6 = Addr.Ipv6.of_index (Prelude.Rng.int rng 1_000_000);
    sport = 1024 + Prelude.Rng.int rng 60000;
    dport = 1 + Prelude.Rng.int rng 1023;
  }

let payload n = String.init n (fun i -> Char.chr (i land 0xFF))

(* ------------------------------------------------------------------ *)
(* Packet builders                                                     *)
(* ------------------------------------------------------------------ *)

let l2 ?(in_port = 0) ?(payload_len = 46) flow =
  let eth =
    Proto.Eth.to_string
      { dst = flow.dst_mac; src = flow.src_mac; ethertype = 0x88B5 (* local exp *) }
  in
  Packet.create ~in_port (eth ^ payload payload_len)

let ipv4_udp ?(in_port = 0) ?(payload_len = 32) ?(ttl = 64) flow =
  let udp_len = Proto.Udp.size + payload_len in
  let eth =
    Proto.Eth.to_string
      { dst = flow.dst_mac; src = flow.src_mac; ethertype = Proto.ethertype_ipv4 }
  in
  let ip =
    Proto.Ipv4.to_string
      (Proto.Ipv4.make ~ttl ~protocol:Proto.proto_udp ~src:flow.src_ip4 ~dst:flow.dst_ip4
         ~payload_len:udp_len ())
  in
  let udp =
    Proto.Udp.to_string
      (Proto.Udp.make ~src_port:flow.sport ~dst_port:flow.dport ~payload_len ())
  in
  Packet.create ~in_port (eth ^ ip ^ udp ^ payload payload_len)

let ipv4_tcp ?(in_port = 0) ?(payload_len = 32) ?(ttl = 64) flow =
  let tcp_len = Proto.Tcp.size + payload_len in
  let eth =
    Proto.Eth.to_string
      { dst = flow.dst_mac; src = flow.src_mac; ethertype = Proto.ethertype_ipv4 }
  in
  let ip =
    Proto.Ipv4.to_string
      (Proto.Ipv4.make ~ttl ~protocol:Proto.proto_tcp ~src:flow.src_ip4 ~dst:flow.dst_ip4
         ~payload_len:tcp_len ())
  in
  let tcp =
    Proto.Tcp.to_string (Proto.Tcp.make ~src_port:flow.sport ~dst_port:flow.dport ())
  in
  Packet.create ~in_port (eth ^ ip ^ tcp ^ payload payload_len)

let ipv6_udp ?(in_port = 0) ?(payload_len = 32) ?(hop_limit = 64) flow =
  let udp_len = Proto.Udp.size + payload_len in
  let eth =
    Proto.Eth.to_string
      { dst = flow.dst_mac; src = flow.src_mac; ethertype = Proto.ethertype_ipv6 }
  in
  let ip =
    Proto.Ipv6.to_string
      (Proto.Ipv6.make ~hop_limit ~next_header:Proto.proto_udp ~src:flow.src_ip6
         ~dst:flow.dst_ip6 ~payload_len:udp_len ())
  in
  let udp =
    Proto.Udp.to_string
      (Proto.Udp.make ~src_port:flow.sport ~dst_port:flow.dport ~payload_len ())
  in
  Packet.create ~in_port (eth ^ ip ^ udp ^ payload payload_len)

(* SRv6: outer IPv6 whose destination is the active segment, then SRH, then
   an inner IPv4/UDP packet (T.Encaps style). *)
let srv6_ipv4 ?(in_port = 0) ?(payload_len = 16) ~segments ~segments_left flow =
  let inner_udp_len = Proto.Udp.size + payload_len in
  let inner_ip =
    Proto.Ipv4.to_string
      (Proto.Ipv4.make ~protocol:Proto.proto_udp ~src:flow.src_ip4 ~dst:flow.dst_ip4
         ~payload_len:inner_udp_len ())
  in
  let inner_udp =
    Proto.Udp.to_string
      (Proto.Udp.make ~src_port:flow.sport ~dst_port:flow.dport ~payload_len ())
  in
  let srh =
    Proto.Srh.to_string
      (Proto.Srh.make ~next_header:Proto.next_header_ipv4 ~segments_left ~segments ())
  in
  let inner = inner_ip ^ inner_udp ^ payload payload_len in
  let active_seg = segments.(segments_left) in
  let outer =
    Proto.Ipv6.to_string
      (Proto.Ipv6.make ~next_header:Proto.next_header_srh ~src:flow.src_ip6
         ~dst:active_seg
         ~payload_len:(String.length srh + String.length inner)
         ())
  in
  let eth =
    Proto.Eth.to_string
      { dst = flow.dst_mac; src = flow.src_mac; ethertype = Proto.ethertype_ipv6 }
  in
  Packet.create ~in_port (eth ^ outer ^ srh ^ inner)

(* A deterministic mixed stream: [n] packets cycling over [nflows] flows
   with the given per-kind proportions (v4, v6, l2). *)
let mixed_stream ?(seed = 42) ~n ~nflows () =
  let rng = Prelude.Rng.create seed in
  let flows = Array.init nflows flow_of_index in
  List.init n (fun i ->
      let flow = flows.(i mod nflows) in
      match Prelude.Rng.int rng 10 with
      | 0 | 1 -> l2 ~in_port:(i mod 8) flow
      | 2 | 3 | 4 -> ipv6_udp ~in_port:(i mod 8) flow
      | _ -> ipv4_udp ~in_port:(i mod 8) flow)
