(* Parsed-header map: which header instances have been located in a packet
   and at which bit offset.

   In IPSA the map is built incrementally as stages parse headers on
   demand and travels with the packet so later stages never re-parse
   (Sec. 2.1 of the paper). In the PISA model the front parser fills the
   whole map before the pipeline. *)

type inst = { def : Hdrdef.t; mutable bit_off : int; mutable valid : bool }

type t = (string, inst) Hashtbl.t

let create () : t = Hashtbl.create 8

let add t ~(def : Hdrdef.t) ~bit_off =
  Hashtbl.replace t def.Hdrdef.name { def; bit_off; valid = true }

let invalidate t name =
  match Hashtbl.find_opt t name with
  | Some inst -> inst.valid <- false
  | None -> ()

let remove t name = Hashtbl.remove t name

let find t name =
  match Hashtbl.find_opt t name with
  | Some inst when inst.valid -> Some inst
  | _ -> None

let is_valid t name = find t name <> None

let names t =
  Hashtbl.fold (fun name inst acc -> if inst.valid then name :: acc else acc) t []

(* Absolute bit offset of [hdr.field] in the packet. *)
let field_pos t ~hdr ~field =
  match find t hdr with
  | None -> None
  | Some inst ->
    (match Hdrdef.field_offset inst.def field with
    | None -> None
    | Some (off, width) -> Some (inst.bit_off + off, width))

let get_field pkt t ~hdr ~field =
  match field_pos t ~hdr ~field with
  | Some (off, width) -> Some (Packet.get_bits pkt ~off ~width)
  | None -> None

let get_field_exn pkt t ~hdr ~field =
  match get_field pkt t ~hdr ~field with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Pmap.get_field: %s.%s not parsed/valid" hdr field)

let set_field pkt t ~hdr ~field v =
  match field_pos t ~hdr ~field with
  | Some (off, width) -> Packet.set_bits pkt ~off (Bits.resize v width)
  | None -> invalid_arg (Printf.sprintf "Pmap.set_field: %s.%s not parsed/valid" hdr field)

(* Shift all instances at or beyond [bit_off] by [delta] bits; used when
   bytes are inserted into or removed from the packet buffer. *)
let shift_from t ~bit_off ~delta =
  Hashtbl.iter
    (fun _ inst -> if inst.bit_off >= bit_off then inst.bit_off <- inst.bit_off + delta)
    t

let copy (t : t) : t =
  let c = Hashtbl.create (Hashtbl.length t) in
  Hashtbl.iter
    (fun k inst -> Hashtbl.replace c k { inst with bit_off = inst.bit_off })
    t;
  c
