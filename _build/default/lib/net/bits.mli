(** Arbitrary-width bit vectors — the universal value type of the data
    plane.

    Header field values, table keys, action arguments and metadata are all
    [Bits.t]. A value of width [w] is stored right-aligned in [⌈w/8⌉]
    bytes, big-endian, with unused high bits kept zero (the normalised
    form), so structural equality and lexicographic comparison coincide
    with numeric equality and ordering for equal widths.

    Bit index 0 refers to the most significant bit of the value, matching
    the order fields appear in a header definition. *)

type t

(** {1 Construction} *)

val create : width:int -> string -> t
(** [create ~width data] wraps raw big-endian bytes; [data] must be
    exactly [⌈width/8⌉] bytes long. High padding bits are cleared.
    @raise Invalid_argument on a width/length mismatch. *)

val zero : int -> t
(** [zero w] is the all-zero value of width [w]. *)

val ones : int -> t
(** [ones w] is the all-ones value of width [w]. *)

val of_int64 : width:int -> int64 -> t
(** [of_int64 ~width v] truncates [v] to [width] bits (low bits kept). *)

val of_int : width:int -> int -> t

val of_string : width:int -> string -> t
(** Alias of {!create}. *)

val of_hex : width:int -> string -> t
(** [of_hex ~width h] parses hex digits (spaces tolerated) as raw bytes. *)

val init : int -> (int -> bool) -> t
(** [init w f] builds a [w]-bit value whose bit [i] (0 = MSB) is [f i]. *)

(** {1 Observation} *)

val width : t -> int

val to_int64 : t -> int64
(** Low 64 bits of the value; wider values are truncated. *)

val to_int : t -> int
val to_raw_string : t -> string
val to_hex : t -> string

val to_string : t -> string
(** ["0x<hex>/<width>"], for diagnostics. *)

val pp : Format.formatter -> t -> unit

val get_bit : t -> int -> bool
(** [get_bit v i] is bit [i] of the value, bit 0 being the MSB.
    @raise Invalid_argument when [i] is out of range. *)

val is_zero : t -> bool
val equal : t -> t -> bool

val compare : t -> t -> int
(** Orders by width first, then numerically. *)

val hash : t -> int

(** {1 Structure} *)

val concat : t -> t -> t
(** [concat a b] has [a]'s bits above [b]'s; width is the sum. *)

val concat_list : t list -> t

val slice : t -> off:int -> len:int -> t
(** [slice v ~off ~len] is bits [off, off+len) of [v] (0 = MSB). *)

val resize : t -> int -> t
(** Zero-extend, or truncate keeping the low bits. *)

(** {1 Arithmetic and logic} *)

val add : t -> t -> t
(** Modular addition over [2^width]; widths must agree. *)

val sub : t -> t -> t
val succ : t -> t
val pred : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(** {1 Matching} *)

val matches_ternary : value:t -> mask:t -> t -> bool
(** [matches_ternary ~value ~mask v]: every set bit of [mask] must agree
    between [value] and [v] — the TCAM match rule. *)
