lib/net/proto.ml: Addr Array Bytes Char Checksum Int32 String
