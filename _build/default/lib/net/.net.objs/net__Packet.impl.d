lib/net/packet.ml: Bitfield Bits Bytes Format Prelude Printf String
