lib/net/bitfield.ml: Bits Bytes Printf
