lib/net/addr.ml: Bits Bytes Char Int32 Int64 List Printf String
