lib/net/pmap.ml: Bits Hashtbl Hdrdef Packet Printf
