lib/net/bits.mli: Format
