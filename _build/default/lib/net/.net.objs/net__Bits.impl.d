lib/net/bits.ml: Bytes Char Format Int Int64 List Prelude Printf String
