lib/net/flowgen.ml: Addr Array Char List Packet Prelude Proto String
