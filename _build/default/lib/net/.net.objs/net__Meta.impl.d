lib/net/meta.ml: Bits Hashtbl List Printf
