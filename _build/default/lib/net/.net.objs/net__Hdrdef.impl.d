lib/net/hdrdef.ml: Bits Hashtbl List Printf
