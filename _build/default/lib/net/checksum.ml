(* RFC 1071 Internet checksum (16-bit ones' complement sum). *)

let ones_complement_sum s =
  let n = String.length s in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + ((Char.code s.[!i] lsl 8) lor Char.code s.[!i + 1]);
    i := !i + 2
  done;
  if n land 1 = 1 then sum := !sum + (Char.code s.[n - 1] lsl 8);
  while !sum > 0xFFFF do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  !sum

let compute s = lnot (ones_complement_sum s) land 0xFFFF

(* A segment with a correct checksum sums to 0xFFFF. *)
let verify s = ones_complement_sum s = 0xFFFF
