(* Per-packet program metadata.

   rP4 programs declare metadata structs (the [structs] section of the
   EBNF); a [Meta.t] instance holds those fields for one packet, plus the
   intrinsic fields every architecture provides. Reads of never-written
   fields yield zero, as on hardware after reset. *)

type t = {
  widths : (string, int) Hashtbl.t;
  values : (string, Bits.t) Hashtbl.t;
}

(* Intrinsic metadata present in every pipeline. *)
let intrinsic = [
  ("in_port", 16);
  ("out_port", 16);
  ("drop", 1);
  ("mark", 8);
  ("switch_tag", 16);
]

let create () =
  let t = { widths = Hashtbl.create 16; values = Hashtbl.create 16 } in
  List.iter (fun (n, w) -> Hashtbl.replace t.widths n w) intrinsic;
  t

let declare t name width = Hashtbl.replace t.widths name width

let declared t name = Hashtbl.mem t.widths name

let width_of t name = Hashtbl.find_opt t.widths name

let get t name =
  match Hashtbl.find_opt t.values name with
  | Some v -> v
  | None -> (
    match Hashtbl.find_opt t.widths name with
    | Some w -> Bits.zero w
    | None -> invalid_arg (Printf.sprintf "Meta.get: undeclared field meta.%s" name))

let set t name v =
  match Hashtbl.find_opt t.widths name with
  | Some w -> Hashtbl.replace t.values name (Bits.resize v w)
  | None -> invalid_arg (Printf.sprintf "Meta.set: undeclared field meta.%s" name)

let get_int t name = Bits.to_int (get t name)
let set_int t name v =
  match Hashtbl.find_opt t.widths name with
  | Some w -> Hashtbl.replace t.values name (Bits.of_int ~width:w v)
  | None -> invalid_arg (Printf.sprintf "Meta.set_int: undeclared field meta.%s" name)

let copy t = { widths = Hashtbl.copy t.widths; values = Hashtbl.copy t.values }

let fields t = Hashtbl.fold (fun name w acc -> (name, w) :: acc) t.widths []
