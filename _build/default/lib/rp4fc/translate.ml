(* rp4fc — the rP4 front-end compiler: P4 (HLIR) -> semantically
   equivalent rP4 (Sec. 3.2, "Flow for Base Design").

   Structure of the transformation:
   - header instances become rP4 headers; the parse graph becomes each
     header's implicit parser (selector fields + tag cases);
   - the metadata struct carries over;
   - actions carry over unchanged (the statement language is shared);
   - every [table.apply()] in the ingress apply block becomes one rP4
     stage whose matcher guard is the conjunction of the enclosing
     conditionals, and whose executor is derived from the table's action
     list: the i-th declared action gets switch tag i+1, the default
     action handles misses. *)

exception Error of string

let conj conds =
  match conds with
  | [] -> Rp4.Ast.C_true
  | c :: rest -> List.fold_left (fun acc c -> Rp4.Ast.C_and (acc, c)) c rest

(* Header instances a condition or key refers to — the stage's parser
   module must request them. *)
let headers_of_table (t : P4lite.Ast.table_decl) =
  List.filter_map
    (function Rp4.Ast.Hdr_field (h, _), _ -> Some h | _ -> None)
    t.P4lite.Ast.t_key

let stage_of_table (prog : P4lite.Ast.program) conds (t : P4lite.Ast.table_decl) :
    Rp4.Ast.stage_decl =
  let guard = conj (List.rev conds) in
  let matcher =
    match guard with
    | Rp4.Ast.C_true -> Rp4.Ast.M_apply t.P4lite.Ast.t_name
    | g -> Rp4.Ast.M_if (g, Rp4.Ast.M_apply t.P4lite.Ast.t_name, Rp4.Ast.M_nop)
  in
  let tagged =
    List.mapi (fun i a -> (i + 1, [ a ])) t.P4lite.Ast.t_actions
    |> List.filter (fun (_, acts) -> acts <> [ "NoAction" ])
  in
  let default =
    match t.P4lite.Ast.t_default with Some a -> [ a ] | None -> [ "NoAction" ]
  in
  let parse_hdrs =
    List.sort_uniq String.compare
      (headers_of_table t
      @ List.concat_map Rp4.Ast.cond_headers conds)
  in
  ignore prog;
  {
    Rp4.Ast.st_name = t.P4lite.Ast.t_name;
    st_parser = parse_hdrs;
    st_matcher = matcher;
    st_executor = { Rp4.Ast.ex_cases = tagged; ex_default = default };
  }

let rec stages_of_apply prog conds (stmts : P4lite.Ast.apply_stmt list) :
    Rp4.Ast.stage_decl list =
  List.concat_map
    (function
      | P4lite.Ast.A_apply tname -> (
        match P4lite.Ast.find_table prog tname with
        | Some t -> [ stage_of_table prog conds t ]
        | None -> raise (Error ("apply of unknown table " ^ tname)))
      | P4lite.Ast.A_if (c, then_, else_) ->
        stages_of_apply prog (c :: conds) then_
        @ stages_of_apply prog (Rp4.Ast.C_not c :: conds) else_)
    stmts

let translate (prog : P4lite.Ast.program) : Rp4.Ast.program =
  let graph = P4lite.Hlir.build prog in
  (* headers: instances in extraction-relevant order (first instance
     leads, so the device's first-header setting is right) *)
  let instance_order =
    let first = match graph.P4lite.Hlir.pg_first with Some f -> [ f ] | None -> [] in
    first
    @ List.filter
        (fun i -> Some i <> graph.P4lite.Hlir.pg_first)
        (List.map (fun i -> i.P4lite.Ast.i_name) prog.P4lite.Ast.instances)
  in
  let headers =
    List.map
      (fun iname ->
        let inst =
          match P4lite.Ast.find_instance prog iname with
          | Some i -> i
          | None -> raise (Error ("undeclared header instance " ^ iname))
        in
        let ht =
          match P4lite.Ast.find_header_type prog inst.P4lite.Ast.i_type with
          | Some h -> h
          | None -> raise (Error ("unknown header type " ^ inst.P4lite.Ast.i_type))
        in
        let sel = P4lite.Hlir.sel_fields_of graph iname in
        {
          Rp4.Ast.hd_name = iname;
          hd_fields =
            List.map
              (fun f -> { Rp4.Ast.fd_name = f.P4lite.Ast.f_name; fd_width = f.P4lite.Ast.f_width })
              ht.P4lite.Ast.ht_fields;
          hd_parser =
            (if sel = [] then None
             else
               Some
                 {
                   Rp4.Ast.ip_sel = sel;
                   ip_cases = P4lite.Hlir.cases_of graph iname;
                 });
        })
      instance_order
  in
  let structs =
    if prog.P4lite.Ast.metadata = [] then []
    else
      [
        {
          Rp4.Ast.sd_name = "metadata_t";
          sd_members =
            List.map
              (fun f -> { Rp4.Ast.fd_name = f.P4lite.Ast.f_name; fd_width = f.P4lite.Ast.f_width })
              prog.P4lite.Ast.metadata;
          sd_alias = Some "meta";
        };
      ]
  in
  let actions =
    List.map
      (fun (a : P4lite.Ast.action_decl) ->
        { Rp4.Ast.ad_name = a.P4lite.Ast.a_name; ad_params = a.P4lite.Ast.a_params; ad_body = a.P4lite.Ast.a_body })
      prog.P4lite.Ast.actions
  in
  let tables =
    List.map
      (fun (t : P4lite.Ast.table_decl) ->
        { Rp4.Ast.td_name = t.P4lite.Ast.t_name; td_key = t.P4lite.Ast.t_key; td_size = t.P4lite.Ast.t_size })
      prog.P4lite.Ast.tables
  in
  let stages = stages_of_apply prog [] prog.P4lite.Ast.apply in
  {
    Rp4.Ast.empty_program with
    Rp4.Ast.headers;
    structs;
    actions;
    tables;
    ingress = stages;
    funcs =
      [
        {
          Rp4.Ast.fn_name = "ingress";
          fn_stages = List.map (fun s -> s.Rp4.Ast.st_name) stages;
        };
      ];
    ingress_entry =
      (match stages with s :: _ -> Some s.Rp4.Ast.st_name | [] -> None);
  }

(* Convenience: P4 source text -> rP4 source text (what the rp4fc binary
   prints). *)
let source_to_source p4_src = Rp4.Pretty.program (translate (P4lite.Parser.parse_string p4_src))
