lib/rp4fc/translate.ml: List P4lite Rp4 String
