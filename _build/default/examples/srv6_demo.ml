(* C2, live: load a brand-new protocol (SRv6 / SRH) into a running
   switch — new header type, new header linkage, new tables — without
   recompiling or reloading the base design.

     dune exec examples/srv6_demo.exe *)

let resolve_file = function
  | "srv6.rp4" -> Usecases.Srv6.source
  | f -> invalid_arg f

let () =
  let device = Ipsa.Device.create ~ntsps:8 () in
  let session =
    match
      Controller.Session.boot ~resolve_file ~source:Usecases.Base_l23.source device
    with
    | Ok s -> s
    | Error errs -> failwith (String.concat "; " errs)
  in
  (match Controller.Session.run_script session Usecases.Base_l23.population with
  | Ok _ -> ()
  | Error e -> failwith e);

  (* before the update the switch does not understand SRH: the packet is
     forwarded as plain IPv6 toward the segment-list midpoint *)
  let srv6_packet () =
    Net.Flowgen.srv6_ipv4 ~in_port:1 ~segments:Usecases.Srv6.segments ~segments_left:1
      Usecases.Srv6.srv6_flow
  in
  (match Ipsa.Device.inject device (srv6_packet ()) with
  | Some (port, _) ->
    Printf.printf "before update: SR packet treated as plain IPv6 -> port %d\n" port
  | None -> print_endline "before update: SR packet dropped");

  (* the runtime load: Fig. 5(c) — note the link_header commands splicing
     SRH between IPv6 and the inner headers *)
  print_endline "\napplying SRv6 load script:";
  print_endline (String.trim Usecases.Srv6.script);
  (match Controller.Session.run_script session Usecases.Srv6.script with
  | Ok _ -> ()
  | Error e -> failwith e);
  (match Controller.Session.run_script session Usecases.Srv6.population with
  | Ok _ -> ()
  | Error e -> failwith e);
  Printf.printf "\nnew TSP mapping:\n%s\n"
    (Rp4bc.Design.mapping_to_string (Controller.Session.design session));

  (* after: the switch performs SR endpoint processing *)
  let pkt = srv6_packet () in
  (match Ipsa.Device.inject device pkt with
  | Some (port, _) ->
    let out = Net.Packet.contents pkt in
    let ip6 = Net.Proto.Ipv6.of_string ~off:14 out in
    let srh = Net.Proto.Srh.of_string ~off:(14 + 40) out in
    Printf.printf
      "after update: SR endpoint processed the packet\n\
      \  outer DA advanced to %s\n\
      \  segments_left now %d\n\
      \  forwarded to port %d\n"
      (Net.Addr.Ipv6.to_string ip6.Net.Proto.Ipv6.dst)
      srh.Net.Proto.Srh.segments_left port
  | None -> print_endline "after update: dropped?!");

  (* plain IPv6 still routes: the original header linkage was preserved *)
  match Ipsa.Device.inject device (Net.Flowgen.ipv6_udp ~in_port:1 Usecases.Base_l23.routed_v6_flow) with
  | Some (port, _) -> Printf.printf "plain IPv6 still forwards -> port %d\n" port
  | None -> print_endline "plain IPv6 dropped?!"
