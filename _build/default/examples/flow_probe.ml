(* C3, live: install an event-triggered flow probe at runtime. The probe
   counts packets of one {SIP, DIP} flow and marks them once the count
   exceeds a threshold (e.g. for the controller to attach ACL/QoS rules).

     dune exec examples/flow_probe.exe *)

let resolve_file = function
  | "probe.rp4" -> Usecases.Flowprobe.source
  | f -> invalid_arg f

let () =
  let device = Ipsa.Device.create ~ntsps:8 () in
  let session =
    match
      Controller.Session.boot ~resolve_file ~source:Usecases.Base_l23.source device
    with
    | Ok s -> s
    | Error errs -> failwith (String.concat "; " errs)
  in
  (match Controller.Session.run_script session Usecases.Base_l23.population with
  | Ok _ -> ()
  | Error e -> failwith e);

  print_endline "installing the probe at runtime:";
  (match Controller.Session.run_script session Usecases.Flowprobe.script with
  | Ok _ -> ()
  | Error e -> failwith e);
  (match Controller.Session.run_script session Usecases.Flowprobe.population with
  | Ok _ -> ()
  | Error e -> failwith e);
  Printf.printf "probe merged into TSP0 alongside port_map:\n%s\n\n"
    (Rp4bc.Design.mapping_to_string (Controller.Session.design session));

  Printf.printf "sending %d packets of the probed flow (threshold %d):\n"
    (Usecases.Flowprobe.threshold + 5)
    Usecases.Flowprobe.threshold;
  for i = 1 to Usecases.Flowprobe.threshold + 5 do
    let pkt = Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Flowprobe.probed_flow in
    match Ipsa.Device.inject device pkt with
    | Some (port, ctx) ->
      let mark = Net.Meta.get_int ctx.Ipsa.Context.meta "mark" in
      Printf.printf "  packet %2d -> port %d %s\n" i port
        (if mark = 1 then "[MARKED]" else "")
    | None -> Printf.printf "  packet %2d dropped\n" i
  done;

  (* a different flow is never marked *)
  let pkt = Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.routed_v4_flow in
  match Ipsa.Device.inject device pkt with
  | Some (_, ctx) ->
    Printf.printf "\nunprobed flow mark = %d (stays unmarked)\n"
      (Net.Meta.get_int ctx.Ipsa.Context.meta "mark")
  | None -> ()
