(* The base-design flow of Fig. 3: write the design in P4, run it through
   rp4fc (P4 -> rP4), compile with rp4bc, and verify the result forwards
   identically to the hand-written rP4 base design.

     dune exec examples/p4_migration.exe *)

let () =
  print_endline "parsing the P4 base design with p4lite...";
  let p4 = P4lite.Parser.parse_string Usecases.P4_base.source in
  Printf.printf "  %d header types, %d tables, %d parser states\n"
    (List.length p4.P4lite.Ast.header_types)
    (List.length p4.P4lite.Ast.tables)
    (List.length p4.P4lite.Ast.states);

  print_endline "translating to rP4 with rp4fc...";
  let rp4_prog = Rp4fc.Translate.translate p4 in
  let rp4_src = Rp4.Pretty.program rp4_prog in
  Printf.printf "  %d rP4 stages generated; excerpt:\n" (List.length (Rp4.Ast.all_stages rp4_prog));
  String.split_on_char '\n' rp4_src
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter (fun l -> print_endline ("    " ^ l));
  print_endline "    ...";

  print_endline "\ncompiling with rp4bc and booting ipbm...";
  let device = Ipsa.Device.create ~ntsps:8 () in
  let session =
    match Controller.Session.boot ~source:rp4_src device with
    | Ok s -> s
    | Error errs -> failwith (String.concat "; " errs)
  in
  (match Controller.Session.run_script session Usecases.Base_l23.population with
  | Ok _ -> ()
  | Error e -> failwith e);
  print_endline (Rp4bc.Design.mapping_to_string (Controller.Session.design session));

  print_endline "\nforwarding checks (same results as the hand-written rP4 design):";
  let check name pkt expected =
    match Ipsa.Device.inject device pkt with
    | Some (port, _) ->
      Printf.printf "  %-18s -> port %d %s\n" name port
        (if port = expected then "(ok)" else "(MISMATCH)")
    | None -> Printf.printf "  %-18s -> dropped (MISMATCH)\n" name
  in
  check "routed IPv4"
    (Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.routed_v4_flow)
    Usecases.Base_l23.expected_port_routed_v4;
  check "host route"
    (Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.host_route_v4_flow)
    Usecases.Base_l23.expected_port_host_v4;
  check "routed IPv6"
    (Net.Flowgen.ipv6_udp ~in_port:1 Usecases.Base_l23.routed_v6_flow)
    Usecases.Base_l23.expected_port_routed_v6;
  check "bridged L2"
    (Net.Flowgen.l2 ~in_port:5 Usecases.Base_l23.bridged_flow)
    Usecases.Base_l23.expected_port_bridged
