(* Quickstart: compile an rP4 program, boot an ipbm switch, populate its
   tables through the runtime API, and forward packets.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. create a device: 8 TSPs, a disaggregated memory pool, a crossbar *)
  let device = Ipsa.Device.create ~ntsps:8 () in

  (* 2. boot it with the L2/L3 base design (rP4 source text); this runs
     rp4bc's full flow and pushes the configuration through the CCM *)
  let session =
    match Controller.Session.boot ~source:Usecases.Base_l23.source device with
    | Ok s -> s
    | Error errs -> failwith (String.concat "; " errs)
  in
  Printf.printf "booted. TSP mapping:\n%s\n\n"
    (Rp4bc.Design.mapping_to_string (Controller.Session.design session));

  (* 3. populate the tables with controller commands (the runtime API that
     rp4fc generates: action names, textual key literals) *)
  (match Controller.Session.run_script session Usecases.Base_l23.population with
  | Ok _ -> ()
  | Error e -> failwith e);
  Printf.printf "runtime table APIs:\n%s\n\n"
    (Controller.Runtime.to_string (Controller.Session.apis session));

  (* 4. forward packets *)
  let show name pkt =
    match Ipsa.Device.inject device pkt with
    | Some (port, ctx) ->
      Printf.printf "%-22s -> port %d (%d cycles, %d lookups)\n" name port
        ctx.Ipsa.Context.cycles ctx.Ipsa.Context.lookups
    | None -> Printf.printf "%-22s -> dropped\n" name
  in
  show "routed IPv4 (LPM)" (Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.routed_v4_flow);
  show "routed IPv4 (host)" (Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.host_route_v4_flow);
  show "routed IPv6" (Net.Flowgen.ipv6_udp ~in_port:1 Usecases.Base_l23.routed_v6_flow);
  show "bridged L2" (Net.Flowgen.l2 ~in_port:5 Usecases.Base_l23.bridged_flow);

  let stats = Ipsa.Device.stats device in
  Printf.printf "\ndevice: %d injected, %d forwarded, %d dropped\n"
    stats.Ipsa.Device.injected stats.Ipsa.Device.forwarded stats.Ipsa.Device.dropped
