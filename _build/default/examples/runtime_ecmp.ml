(* C1, live: insert the ECMP function into a *running* switch while
   traffic flows, and contrast with the PISA baseline, which must reload
   the whole design (dropping packets and losing every table entry).

     dune exec examples/runtime_ecmp.exe *)

let resolve_file = function
  | "ecmp.rp4" -> Usecases.Ecmp.source
  | f -> invalid_arg f

let routed i =
  Net.Flowgen.ipv4_udp ~in_port:0
    (Net.Flowgen.make_flow
       ~dst_mac:(Net.Addr.Mac.of_string_exn Usecases.Base_l23.router_mac)
       ~dst_ip4:(Net.Addr.Ipv4.of_int (0x0A010000 lor (32 + i)))
       ())

let () =
  print_endline "=== IPSA: in-situ ECMP insertion ===";
  let device = Ipsa.Device.create ~ntsps:8 () in
  let session =
    match
      Controller.Session.boot ~resolve_file ~source:Usecases.Base_l23.source device
    with
    | Ok s -> s
    | Error errs -> failwith (String.concat "; " errs)
  in
  (match Controller.Session.run_script session Usecases.Base_l23.population with
  | Ok _ -> ()
  | Error e -> failwith e);

  (* traffic before the update: everything goes through nexthop to port 1 *)
  for i = 0 to 9 do
    ignore (Ipsa.Device.inject device (routed i))
  done;
  let before = Ipsa.Device.stats device in
  Printf.printf "before update: %d forwarded, %d dropped\n"
    before.Ipsa.Device.forwarded before.Ipsa.Device.dropped;

  (* the in-situ update: Fig. 5(b)'s script, then member population *)
  (match Controller.Session.run_script session Usecases.Ecmp.script with
  | Ok _ -> ()
  | Error e -> failwith e);
  (match Controller.Session.run_script session Usecases.Ecmp.population with
  | Ok _ -> ()
  | Error e -> failwith e);
  (match Controller.Session.last_timing session with
  | Some t ->
    Printf.printf
      "update: compiled in %.2f ms, %d template(s) rewritten, %d bytes of config, \
       nexthop table recycled\n"
      (t.Controller.Session.compile_ns /. 1e6)
      t.Controller.Session.compile_stats.Rp4bc.Compile.templates_emitted
      t.Controller.Session.load_report.Ipsa.Device.lr_bytes
  | None -> ());

  (* traffic after: flows spread over both ECMP members, zero loss *)
  let ports = Hashtbl.create 4 in
  for i = 0 to 63 do
    match Ipsa.Device.inject device (routed i) with
    | Some (port, _) ->
      Hashtbl.replace ports port (1 + Option.value ~default:0 (Hashtbl.find_opt ports port))
    | None -> ()
  done;
  Hashtbl.fold (fun p n acc -> (p, n) :: acc) ports []
  |> List.sort compare
  |> List.iter (fun (p, n) -> Printf.printf "after update: port %d carries %d flows\n" p n);
  let after = Ipsa.Device.stats device in
  Printf.printf "packets dropped across the whole update: %d\n\n"
    (after.Ipsa.Device.dropped - before.Ipsa.Device.dropped);

  print_endline "=== PISA baseline: same update needs a full reload ===";
  let prog = Rp4.Parser.parse_string Usecases.Base_l23.source in
  let pool = Ipsa.Device.default_pool () in
  let compiled =
    match Rp4bc.Compile.compile_full ~pool prog with
    | Ok c -> c
    | Error errs -> failwith (String.concat "; " errs)
  in
  let pisa = Pisa.Device.create ~nstages:8 () in
  (match Pisa.Deploy.install pisa compiled.Rp4bc.Compile.design with
  | Ok _ -> ()
  | Error e -> failwith e);
  (match
     Pisa.Deploy.populate pisa compiled.Rp4bc.Compile.design Usecases.Base_l23.population
   with
  | Ok n -> Printf.printf "initial population: %d entries\n" n
  | Error e -> failwith e);
  (* the update: recompile base+ECMP as a whole, swap it in *)
  let p4 = P4lite.Parser.parse_string Usecases.P4_base.source_with_ecmp in
  let compiled' =
    match Rp4bc.Compile.compile_full ~pool:(Ipsa.Device.default_pool ())
            (Rp4fc.Translate.translate p4)
    with
    | Ok c -> c
    | Error errs -> failwith (String.concat "; " errs)
  in
  Pisa.Device.begin_reload pisa;
  (* traffic arriving during the swap window is lost *)
  for i = 0 to 9 do
    ignore (Pisa.Device.inject pisa (routed i))
  done;
  (match Pisa.Deploy.install pisa compiled'.Rp4bc.Compile.design with
  | Ok r -> Printf.printf "reload shipped %d bytes of full-design config\n" r.Pisa.Device.rr_config_bytes
  | Error e -> failwith e);
  Pisa.Device.end_reload pisa;
  let population' =
    String.split_on_char '\n' Usecases.Base_l23.population
    |> List.filter (fun l -> not (String.length l > 18 && String.sub l 10 7 = "nexthop"))
    |> String.concat "\n"
  in
  (match
     Pisa.Deploy.populate pisa compiled'.Rp4bc.Compile.design
       (population' ^ "\n" ^ Usecases.Ecmp.population)
   with
  | Ok n -> Printf.printf "had to repopulate ALL %d entries (IPSA repopulated 3)\n" n
  | Error e -> failwith e);
  let s = Pisa.Device.stats pisa in
  Printf.printf "packets dropped during the PISA reload window: %d\n"
    s.Pisa.Device.dropped_during_reload
