examples/p4_migration.mli:
