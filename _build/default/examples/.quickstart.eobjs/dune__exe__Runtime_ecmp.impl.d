examples/runtime_ecmp.ml: Controller Hashtbl Ipsa List Net Option P4lite Pisa Printf Rp4 Rp4bc Rp4fc String Usecases
