examples/quickstart.ml: Controller Ipsa Net Printf Rp4bc String Usecases
