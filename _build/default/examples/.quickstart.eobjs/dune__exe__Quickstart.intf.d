examples/quickstart.mli:
