examples/flow_probe.mli:
