examples/srv6_demo.ml: Controller Ipsa Net Printf Rp4bc String Usecases
