examples/srv6_demo.mli:
