examples/flow_probe.ml: Controller Ipsa Net Printf Rp4bc String Usecases
