examples/p4_migration.ml: Controller Ipsa List Net P4lite Printf Rp4 Rp4bc Rp4fc String Usecases
