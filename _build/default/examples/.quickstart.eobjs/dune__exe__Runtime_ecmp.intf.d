examples/runtime_ecmp.mli:
