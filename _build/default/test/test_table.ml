(* Tests for the match-table library: LPM trie, TCAM, and the unified
   table with its four engines (exact / lpm / ternary / hash), checked
   against naive reference implementations with property tests. *)

module B = Net.Bits
module K = Table.Key

let check = Alcotest.check

(* --- LPM trie ----------------------------------------------------------- *)

let ip v = B.of_int ~width:32 v

let test_lpm_basic () =
  let t = Table.Lpm_trie.create () in
  Table.Lpm_trie.insert t ~prefix:(ip 0x0A000000) ~plen:8 "10/8";
  Table.Lpm_trie.insert t ~prefix:(ip 0x0A010000) ~plen:16 "10.1/16";
  Table.Lpm_trie.insert t ~prefix:(ip 0x0A010200) ~plen:24 "10.1.2/24";
  check (Alcotest.option Alcotest.string) "most specific wins" (Some "10.1.2/24")
    (Table.Lpm_trie.lookup t (ip 0x0A010203));
  check (Alcotest.option Alcotest.string) "middle prefix" (Some "10.1/16")
    (Table.Lpm_trie.lookup t (ip 0x0A01FF00));
  check (Alcotest.option Alcotest.string) "short prefix" (Some "10/8")
    (Table.Lpm_trie.lookup t (ip 0x0AFFFFFF));
  check (Alcotest.option Alcotest.string) "miss" None
    (Table.Lpm_trie.lookup t (ip 0x0B000000))

let test_lpm_default_route () =
  let t = Table.Lpm_trie.create () in
  Table.Lpm_trie.insert t ~prefix:(ip 0) ~plen:0 "default";
  check (Alcotest.option Alcotest.string) "plen 0 matches all" (Some "default")
    (Table.Lpm_trie.lookup t (ip 0xDEADBEEF))

let test_lpm_remove_and_prune () =
  let t = Table.Lpm_trie.create () in
  Table.Lpm_trie.insert t ~prefix:(ip 0x0A000000) ~plen:8 "a";
  Table.Lpm_trie.insert t ~prefix:(ip 0x0A010000) ~plen:16 "b";
  check Alcotest.int "count" 2 (Table.Lpm_trie.count t);
  check Alcotest.bool "remove hits" true (Table.Lpm_trie.remove t ~prefix:(ip 0x0A010000) ~plen:16);
  check Alcotest.bool "remove idempotent" false
    (Table.Lpm_trie.remove t ~prefix:(ip 0x0A010000) ~plen:16);
  check Alcotest.int "count after" 1 (Table.Lpm_trie.count t);
  check (Alcotest.option Alcotest.string) "fallback after remove" (Some "a")
    (Table.Lpm_trie.lookup t (ip 0x0A010203))

(* naive reference LPM *)
let naive_lpm entries key =
  List.fold_left
    (fun best (prefix, plen, v) ->
      let matches =
        plen = 0
        || B.equal (B.slice prefix ~off:0 ~len:plen) (B.slice key ~off:0 ~len:plen)
      in
      match (matches, best) with
      | false, _ -> best
      | true, Some (bl, _) when bl >= plen -> best
      | true, _ -> Some (plen, v))
    None entries
  |> Option.map snd

let prop_lpm_vs_naive =
  QCheck.Test.make ~count:200 ~name:"lpm trie = naive reference"
    QCheck.(pair (small_list (pair (int_range 0 0xFFFFFF) (int_range 0 24))) (int_range 0 0xFFFFFF))
    (fun (raw_entries, raw_key) ->
      let t = Table.Lpm_trie.create () in
      let entries =
        List.mapi
          (fun i (v, plen) ->
            let prefix = B.of_int ~width:24 v in
            (prefix, plen, i))
          raw_entries
      in
      (* deduplicate by (prefix bits, plen): trie replaces, naive must too *)
      let seen = Hashtbl.create 8 in
      let entries =
        List.filter
          (fun (p, plen, _) ->
            let k = (B.to_hex (B.slice p ~off:0 ~len:plen), plen) in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          entries
      in
      List.iter (fun (p, plen, v) -> Table.Lpm_trie.insert t ~prefix:p ~plen v) entries;
      let key = B.of_int ~width:24 raw_key in
      Table.Lpm_trie.lookup t key = naive_lpm entries key)

(* --- TCAM ---------------------------------------------------------------- *)

let test_tcam_priority () =
  let t = Table.Tcam.create () in
  let w v = B.of_int ~width:8 v in
  Table.Tcam.insert t ~value:(w 0xF0) ~mask:(w 0xF0) ~priority:1 "low";
  Table.Tcam.insert t ~value:(w 0xFF) ~mask:(w 0xFF) ~priority:10 "high";
  check (Alcotest.option Alcotest.string) "priority wins" (Some "high")
    (Table.Tcam.lookup t (w 0xFF));
  check (Alcotest.option Alcotest.string) "fallback" (Some "low") (Table.Tcam.lookup t (w 0xF3));
  check (Alcotest.option Alcotest.string) "miss" None (Table.Tcam.lookup t (w 0x0F))

let test_tcam_stable_order () =
  let t = Table.Tcam.create () in
  let w v = B.of_int ~width:8 v in
  Table.Tcam.insert t ~value:(w 0x00) ~mask:(w 0x00) ~priority:5 "first";
  Table.Tcam.insert t ~value:(w 0x01) ~mask:(w 0x00) ~priority:5 "second";
  check (Alcotest.option Alcotest.string) "equal priority: insertion order" (Some "first")
    (Table.Tcam.lookup t (w 0x42))

let test_tcam_remove () =
  let t = Table.Tcam.create () in
  let w v = B.of_int ~width:8 v in
  Table.Tcam.insert t ~value:(w 1) ~mask:(w 0xFF) ~priority:0 "x";
  check Alcotest.bool "removed" true (Table.Tcam.remove t ~value:(w 1) ~mask:(w 0xFF));
  check Alcotest.int "empty" 0 (Table.Tcam.count t)

(* --- unified table: exact engine ------------------------------------------ *)

let exact_spec =
  {
    Table.name = "t_exact";
    fields =
      [
        { K.kf_ref = "meta.a"; kf_width = 16; kf_kind = K.Exact };
        { K.kf_ref = "h.b"; kf_width = 8; kf_kind = K.Exact };
      ];
    size = 8;
  }

let test_exact_table () =
  let t = Table.create exact_spec in
  Table.insert t
    ~matches:[ K.M_exact (B.of_int ~width:16 7); K.M_exact (B.of_int ~width:8 9) ]
    ~action:"1" ~args:[ B.of_int ~width:16 42 ] ();
  (match Table.lookup t [ B.of_int ~width:16 7; B.of_int ~width:8 9 ] with
  | Some e ->
    check Alcotest.string "action" "1" e.Table.action;
    check Alcotest.int "hits" 1 e.Table.hits
  | None -> Alcotest.fail "expected hit");
  check Alcotest.bool "miss" true (Table.lookup t [ B.of_int ~width:16 7; B.of_int ~width:8 8 ] = None);
  (* replace on same key *)
  Table.insert t
    ~matches:[ K.M_exact (B.of_int ~width:16 7); K.M_exact (B.of_int ~width:8 9) ]
    ~action:"2" ~args:[] ();
  check Alcotest.int "replace keeps count" 1 (Table.entry_count t);
  (match Table.lookup t [ B.of_int ~width:16 7; B.of_int ~width:8 9 ] with
  | Some e -> check Alcotest.string "replaced" "2" e.Table.action
  | None -> Alcotest.fail "hit expected");
  check Alcotest.bool "delete" true
    (Table.delete t [ K.M_exact (B.of_int ~width:16 7); K.M_exact (B.of_int ~width:8 9) ]);
  check Alcotest.int "empty" 0 (Table.entry_count t)

let test_table_capacity () =
  let t = Table.create { exact_spec with Table.size = 2 } in
  let add i =
    Table.insert t
      ~matches:[ K.M_exact (B.of_int ~width:16 i); K.M_exact (B.of_int ~width:8 i) ]
      ~action:"1" ~args:[] ()
  in
  add 1;
  add 2;
  match add 3 with
  | exception Table.Full _ -> ()
  | _ -> Alcotest.fail "should be full"

let test_table_key_validation () =
  let t = Table.create exact_spec in
  (match Table.lookup t [ B.of_int ~width:16 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong arity should fail");
  match Table.lookup t [ B.of_int ~width:8 1; B.of_int ~width:8 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong width should fail"

(* --- unified table: lpm engine --------------------------------------------- *)

let lpm_spec =
  {
    Table.name = "t_lpm";
    fields =
      [
        { K.kf_ref = "meta.vrf"; kf_width = 16; kf_kind = K.Exact };
        { K.kf_ref = "h.dst"; kf_width = 32; kf_kind = K.Lpm };
      ];
    size = 64;
  }

let test_lpm_table () =
  let t = Table.create lpm_spec in
  let vrf = B.of_int ~width:16 10 in
  Table.insert t
    ~matches:[ K.M_exact vrf; K.M_lpm (ip 0x0A000000, 8) ]
    ~action:"1" ~args:[] ();
  Table.insert t
    ~matches:[ K.M_exact vrf; K.M_lpm (ip 0x0A010000, 16) ]
    ~action:"2" ~args:[] ();
  let action key =
    Option.map (fun e -> e.Table.action) (Table.lookup t [ vrf; key ])
  in
  check (Alcotest.option Alcotest.string) "specific" (Some "2") (action (ip 0x0A010005));
  check (Alcotest.option Alcotest.string) "general" (Some "1") (action (ip 0x0A990005));
  check (Alcotest.option Alcotest.string) "other vrf misses" None
    (Option.map (fun e -> e.Table.action)
       (Table.lookup t [ B.of_int ~width:16 11; ip 0x0A010005 ]))

(* --- unified table: ternary engine ----------------------------------------- *)

let ternary_spec =
  {
    Table.name = "t_tern";
    fields = [ { K.kf_ref = "h.x"; kf_width = 16; kf_kind = K.Ternary } ];
    size = 16;
  }

let test_ternary_table () =
  let t = Table.create ternary_spec in
  let w v = B.of_int ~width:16 v in
  Table.insert t ~priority:5
    ~matches:[ K.M_ternary (w 0x1200, w 0xFF00) ]
    ~action:"hi" ~args:[] ();
  Table.insert t ~priority:1 ~matches:[ K.M_any ] ~action:"any" ~args:[] ();
  let action key = Option.map (fun e -> e.Table.action) (Table.lookup t [ w key ]) in
  check (Alcotest.option Alcotest.string) "masked" (Some "hi") (action 0x12FF);
  check (Alcotest.option Alcotest.string) "wildcard" (Some "any") (action 0x3456)

(* --- unified table: hash engine -------------------------------------------- *)

let hash_spec =
  {
    Table.name = "t_hash";
    fields =
      [
        { K.kf_ref = "meta.grp"; kf_width = 8; kf_kind = K.Exact };
        { K.kf_ref = "h.flow"; kf_width = 32; kf_kind = K.Hash };
      ];
    size = 16;
  }

let test_hash_table_selection () =
  let t = Table.create hash_spec in
  let grp = B.of_int ~width:8 1 in
  (* three members of group 1, one of group 2 *)
  List.iter
    (fun name ->
      Table.insert t ~matches:[ K.M_exact grp; K.M_any ] ~action:name ~args:[] ())
    [ "m0"; "m1"; "m2" ];
  Table.insert t
    ~matches:[ K.M_exact (B.of_int ~width:8 2); K.M_any ]
    ~action:"other" ~args:[] ();
  check Alcotest.int "members kept (no dedup in hash engine)" 4 (Table.entry_count t);
  (* selection is deterministic per flow and restricted to the group *)
  let used = Hashtbl.create 4 in
  for flow = 0 to 199 do
    match Table.lookup t [ grp; B.of_int ~width:32 flow ] with
    | Some e ->
      if e.Table.action = "other" then Alcotest.fail "picked entry from wrong group";
      Hashtbl.replace used e.Table.action ();
      (* determinism *)
      (match Table.lookup t [ grp; B.of_int ~width:32 flow ] with
      | Some e' -> check Alcotest.string "stable" e.Table.action e'.Table.action
      | None -> Alcotest.fail "second lookup missed")
    | None -> Alcotest.fail "hash lookup should hit"
  done;
  check Alcotest.int "all members used" 3 (Hashtbl.length used)

let test_hash_table_miss () =
  let t = Table.create hash_spec in
  check Alcotest.bool "empty group misses" true
    (Table.lookup t [ B.of_int ~width:8 9; B.of_int ~width:32 1 ] = None)

(* --- default actions --------------------------------------------------------- *)

let test_default_action () =
  let t = Table.create exact_spec in
  Table.set_default t "fallback" [ B.of_int ~width:8 1 ];
  match Table.apply t [ B.of_int ~width:16 1; B.of_int ~width:8 1 ] with
  | Some o ->
    check Alcotest.string "default action" "fallback" o.Table.o_action;
    check Alcotest.bool "not a hit" false o.Table.o_hit
  | None -> Alcotest.fail "default should apply"

(* --- property: exact engine vs assoc list ------------------------------------ *)

let prop_exact_vs_naive =
  QCheck.Test.make ~count:200 ~name:"exact table = assoc reference"
    QCheck.(pair (small_list (pair (int_range 0 50) (int_range 0 5))) (small_list (int_range 0 50)))
    (fun (inserts, lookups) ->
      let t =
        Table.create
          {
            Table.name = "p";
            fields = [ { K.kf_ref = "k"; kf_width = 16; kf_kind = K.Exact } ];
            size = 1000;
          }
      in
      let reference = Hashtbl.create 16 in
      List.iter
        (fun (k, a) ->
          let action = string_of_int a in
          Table.insert t ~matches:[ K.M_exact (B.of_int ~width:16 k) ] ~action ~args:[] ();
          Hashtbl.replace reference k action)
        inserts;
      List.for_all
        (fun k ->
          let got =
            Option.map (fun e -> e.Table.action) (Table.lookup t [ B.of_int ~width:16 k ])
          in
          got = Hashtbl.find_opt reference k)
        lookups)

(* --- stats --------------------------------------------------------------------- *)

let test_stats () =
  let t = Table.create exact_spec in
  Table.insert t
    ~matches:[ K.M_exact (B.of_int ~width:16 1); K.M_exact (B.of_int ~width:8 1) ]
    ~action:"1" ~args:[] ();
  ignore (Table.lookup t [ B.of_int ~width:16 1; B.of_int ~width:8 1 ]);
  ignore (Table.lookup t [ B.of_int ~width:16 2; B.of_int ~width:8 2 ]);
  let lookups, hits = Table.stats t in
  check Alcotest.int "lookups" 2 lookups;
  check Alcotest.int "hits" 1 hits

let () =
  Alcotest.run "table"
    [
      ( "lpm-trie",
        [
          Alcotest.test_case "basic" `Quick test_lpm_basic;
          Alcotest.test_case "default route" `Quick test_lpm_default_route;
          Alcotest.test_case "remove/prune" `Quick test_lpm_remove_and_prune;
          QCheck_alcotest.to_alcotest prop_lpm_vs_naive;
        ] );
      ( "tcam",
        [
          Alcotest.test_case "priority" `Quick test_tcam_priority;
          Alcotest.test_case "stable order" `Quick test_tcam_stable_order;
          Alcotest.test_case "remove" `Quick test_tcam_remove;
        ] );
      ( "table",
        [
          Alcotest.test_case "exact engine" `Quick test_exact_table;
          Alcotest.test_case "capacity" `Quick test_table_capacity;
          Alcotest.test_case "key validation" `Quick test_table_key_validation;
          Alcotest.test_case "lpm engine" `Quick test_lpm_table;
          Alcotest.test_case "ternary engine" `Quick test_ternary_table;
          Alcotest.test_case "hash engine" `Quick test_hash_table_selection;
          Alcotest.test_case "hash miss" `Quick test_hash_table_miss;
          Alcotest.test_case "default action" `Quick test_default_action;
          Alcotest.test_case "stats" `Quick test_stats;
          QCheck_alcotest.to_alcotest prop_exact_vs_naive;
        ] );
    ]
