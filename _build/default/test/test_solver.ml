(* Tests for the 0-1 ILP branch-and-bound solver and the set-packing
   front end — including optimality checks against brute force on random
   small instances. *)

let check = Alcotest.check

let mk nvars objective constraints =
  { Solver.Ilp.nvars; objective; constraints = Array.of_list constraints }

(* --- hand instances ------------------------------------------------------ *)

let test_ilp_trivial () =
  let sol = Solver.Ilp.solve (mk 0 [||] []) in
  check (Alcotest.float 0.0) "empty problem" 0.0 sol.Solver.Ilp.value;
  check Alcotest.bool "optimal" true sol.Solver.Ilp.optimal

let test_ilp_unconstrained () =
  (* pick everything with positive objective *)
  let sol = Solver.Ilp.solve (mk 3 [| 1.0; -2.0; 3.0 |] []) in
  check (Alcotest.float 0.001) "value" 4.0 sol.Solver.Ilp.value;
  check Alcotest.bool "assignment" true
    (sol.Solver.Ilp.assignment = [| true; false; true |])

let test_ilp_knapsack () =
  (* classic: weights 2,3,4,5 capacity 6, values 3,4,5,6 -> best = {2,4}=8 *)
  let sol =
    Solver.Ilp.solve
      (mk 4 [| 3.0; 4.0; 5.0; 6.0 |] [ ([| 2.0; 3.0; 4.0; 5.0 |], 6.0) ])
  in
  check (Alcotest.float 0.001) "knapsack optimum" 8.0 sol.Solver.Ilp.value;
  check Alcotest.bool "proved optimal" true sol.Solver.Ilp.optimal

let test_ilp_mutual_exclusion () =
  (* x0 + x1 <= 1 with values 5 and 7: pick x1 *)
  let sol = Solver.Ilp.solve (mk 2 [| 5.0; 7.0 |] [ ([| 1.0; 1.0 |], 1.0) ]) in
  check (Alcotest.float 0.001) "picked better" 7.0 sol.Solver.Ilp.value

let test_ilp_infeasible_vars_skipped () =
  (* a variable that violates a constraint alone can never be chosen *)
  let sol = Solver.Ilp.solve (mk 2 [| 100.0; 1.0 |] [ ([| 5.0; 1.0 |], 2.0) ]) in
  check (Alcotest.float 0.001) "big var excluded" 1.0 sol.Solver.Ilp.value

let test_greedy_feasible () =
  let p = mk 4 [| 3.0; 4.0; 5.0; 6.0 |] [ ([| 2.0; 3.0; 4.0; 5.0 |], 6.0) ] in
  let g = Solver.Ilp.solve_greedy p in
  check Alcotest.bool "greedy feasible" true (Solver.Ilp.feasible p g.Solver.Ilp.assignment)

(* --- brute-force cross-check ---------------------------------------------- *)

let brute_force (p : Solver.Ilp.problem) =
  let best = ref 0.0 in
  let n = p.Solver.Ilp.nvars in
  for mask = 0 to (1 lsl n) - 1 do
    let assignment = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
    if Solver.Ilp.feasible p assignment then begin
      let v = Solver.Ilp.value_of p assignment in
      if v > !best then best := v
    end
  done;
  !best

let prop_ilp_optimal =
  QCheck.Test.make ~count:150 ~name:"branch-and-bound = brute force (n<=10)"
    QCheck.(
      pair
        (int_range 1 10)
        (pair (small_list (int_range 0 20)) (int_range 1 4)))
    (fun (n, (seeds, ncons)) ->
      let rng = Prelude.Rng.create (Hashtbl.hash (n, seeds, ncons)) in
      let objective = Array.init n (fun _ -> float_of_int (Prelude.Rng.int rng 20) -. 5.0) in
      let constraints =
        List.init ncons (fun _ ->
            ( Array.init n (fun _ -> float_of_int (Prelude.Rng.int rng 6)),
              float_of_int (3 + Prelude.Rng.int rng 10) ))
      in
      let p = mk n objective constraints in
      let sol = Solver.Ilp.solve p in
      Float.abs (sol.Solver.Ilp.value -. brute_force p) < 1e-6
      && Solver.Ilp.feasible p sol.Solver.Ilp.assignment)

let test_ilp_node_budget () =
  (* with a tiny budget the solver still returns a feasible solution *)
  let n = 20 in
  let p =
    mk n
      (Array.init n (fun i -> float_of_int (i + 1)))
      [ (Array.make n 1.0, 10.0) ]
  in
  let sol = Solver.Ilp.solve ~node_budget:10 p in
  check Alcotest.bool "feasible under budget" true
    (Solver.Ilp.feasible p sol.Solver.Ilp.assignment);
  check Alcotest.bool "not proved optimal" false sol.Solver.Ilp.optimal

(* --- set packing ------------------------------------------------------------ *)

let test_setpack_basic () =
  (* two tables, three placement options; options 0 and 1 share a block *)
  let options =
    [|
      { Solver.Setpack.opt_table = 0; opt_resources = [ 0; 1 ]; opt_weight = 5.0 };
      { Solver.Setpack.opt_table = 1; opt_resources = [ 1; 2 ]; opt_weight = 5.0 };
      { Solver.Setpack.opt_table = 1; opt_resources = [ 3 ]; opt_weight = 4.0 };
    |]
  in
  let r = Solver.Setpack.solve ~n_tables:2 ~n_resources:4 options in
  check (Alcotest.float 0.001) "best packing" 9.0 r.Solver.Setpack.weight;
  check Alcotest.bool "chose disjoint options" true
    (List.sort compare r.Solver.Setpack.chosen = [ 0; 2 ])

let test_setpack_one_option_per_table () =
  let options =
    [|
      { Solver.Setpack.opt_table = 0; opt_resources = [ 0 ]; opt_weight = 1.0 };
      { Solver.Setpack.opt_table = 0; opt_resources = [ 1 ]; opt_weight = 2.0 };
    |]
  in
  let r = Solver.Setpack.solve ~n_tables:1 ~n_resources:2 options in
  check Alcotest.int "single choice" 1 (List.length r.Solver.Setpack.chosen);
  check (Alcotest.float 0.001) "picked heavier" 2.0 r.Solver.Setpack.weight

let test_setpack_validation () =
  let bad = [| { Solver.Setpack.opt_table = 5; opt_resources = []; opt_weight = 1.0 } |] in
  match Solver.Setpack.solve ~n_tables:2 ~n_resources:1 bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad table index should fail"

let () =
  Alcotest.run "solver"
    [
      ( "ilp",
        [
          Alcotest.test_case "trivial" `Quick test_ilp_trivial;
          Alcotest.test_case "unconstrained" `Quick test_ilp_unconstrained;
          Alcotest.test_case "knapsack" `Quick test_ilp_knapsack;
          Alcotest.test_case "mutual exclusion" `Quick test_ilp_mutual_exclusion;
          Alcotest.test_case "infeasible vars" `Quick test_ilp_infeasible_vars_skipped;
          Alcotest.test_case "greedy feasible" `Quick test_greedy_feasible;
          Alcotest.test_case "node budget" `Quick test_ilp_node_budget;
          QCheck_alcotest.to_alcotest prop_ilp_optimal;
        ] );
      ( "setpack",
        [
          Alcotest.test_case "basic" `Quick test_setpack_basic;
          Alcotest.test_case "one option per table" `Quick test_setpack_one_option_per_table;
          Alcotest.test_case "validation" `Quick test_setpack_validation;
        ] );
    ]
