(* Tests for the experiment harness: the synthetic workload generator and
   the cheap (model-only) experiment drivers. *)

let check = Alcotest.check

let test_synth_chain_compiles () =
  let prog = Rp4.Parser.parse_string (Harness.Synth.chain_program ~nstages:5) in
  match Rp4.Semantic.build prog with
  | Ok env ->
    check Alcotest.int "five stages" 5
      (List.length (Rp4.Ast.all_stages env.Rp4.Semantic.prog))
  | Error errs -> Alcotest.failf "synth chain invalid: %s" (String.concat "; " errs)

let test_synth_stages_unmergeable () =
  (* chain stages are chained by data dependencies: 5 stages -> 5 groups *)
  let prog = Rp4.Parser.parse_string (Harness.Synth.chain_program ~nstages:5) in
  match Rp4.Semantic.build prog with
  | Error errs -> Alcotest.failf "%s" (String.concat "; " errs)
  | Ok env ->
    let order = List.map (fun s -> s.Rp4.Ast.st_name) env.Rp4.Semantic.prog.Rp4.Ast.ingress in
    check Alcotest.int "no merging" 5 (List.length (Rp4bc.Group.merge env order))

let test_synth_snippet_unmergeable_with_neighbours () =
  let prog = Rp4.Parser.parse_string (Harness.Synth.chain_program ~nstages:4) in
  let snippet = Rp4.Parser.parse_string (Harness.Synth.snippet ~id:0 ~pos:1) in
  match Rp4.Semantic.build ~base:prog snippet with
  | Error errs -> Alcotest.failf "%s" (String.concat "; " errs)
  | Ok env ->
    let s name =
      Rp4bc.Depgraph.summarize env (Option.get (Rp4.Ast.find_stage env.Rp4.Semantic.prog name))
    in
    check Alcotest.bool "conflicts with predecessor" false
      (Rp4bc.Depgraph.independent env (s "s1") (s "u0"));
    check Alcotest.bool "conflicts with successor" false
      (Rp4bc.Depgraph.independent env (s "u0") (s "s2"))

let test_synth_stream_deterministic () =
  let run algo =
    Harness.Synth.run_update_stream ~seed:3 ~nstages:5 ~ntsps:16 ~nupdates:6 ~algo
  in
  let r1, w1, _ = run Rp4bc.Layout.Dp in
  let r2, w2, _ = run Rp4bc.Layout.Dp in
  check Alcotest.int "rewrites reproducible" r1 r2;
  check Alcotest.int "work reproducible" w1 w2;
  check Alcotest.bool "stream does real work" true (r1 >= 6)

let test_synth_greedy_cheaper_alignment () =
  let _, gw, _ =
    Harness.Synth.run_update_stream ~seed:5 ~nstages:6 ~ntsps:20 ~nupdates:8
      ~algo:Rp4bc.Layout.Greedy
  in
  let _, dw, _ =
    Harness.Synth.run_update_stream ~seed:5 ~nstages:6 ~ntsps:20 ~nupdates:8
      ~algo:Rp4bc.Layout.Dp
  in
  check Alcotest.bool "greedy does fewer alignment steps" true (gw < dw)

let test_paper_constants_consistent () =
  (* the stored paper numbers must be self-consistent with its ratios *)
  List.iter
    (fun c ->
      let (p_tc, _), (i_tc, _) = Harness.Paper.table1_fpga c in
      let ratio = 100.0 *. i_tc /. p_tc in
      check Alcotest.bool "fpga tC ratio in 1.5-3.5%" true (ratio > 1.5 && ratio < 3.5);
      let pisa, ipsa = Harness.Paper.throughput c in
      check Alcotest.bool "throughput ordering" true (pisa > ipsa))
    Harness.Paper.cases

let test_case_setup_produces_designs () =
  let session, _device, timing = Harness.Cases.ipsa_case Harness.Paper.C1 in
  check Alcotest.bool "timing captured" true
    (timing.Controller.Session.compile_ns > 0.0);
  let design = Controller.Session.design session in
  check Alcotest.bool "ecmp in updated design" true
    (Rp4.Ast.find_table (Rp4bc.Design.program design) "ecmp_ipv4" <> None);
  let _, run = Harness.Cases.pisa_case Harness.Paper.C1 in
  check Alcotest.bool "pisa full compile measured" true (run.Harness.Cases.pr_compile_ms > 0.0);
  check Alcotest.bool "pisa repopulated everything" true (run.Harness.Cases.pr_entries > 20)

let test_throughput_profiles_shapes () =
  let session, _, _ = Harness.Cases.ipsa_case Harness.Paper.C2 in
  let profiles =
    Ipsa_cost.Throughput.profiles_of_design (Controller.Session.design session)
  in
  check Alcotest.int "one profile per active TSP" 7 (List.length profiles);
  let chain =
    Ipsa_cost.Throughput.max_chain_bits (Controller.Session.design session)
  in
  (* ethernet(112) + ipv6(320) + srh(448) + inner ipv6(320) is the longest
     chain once SRv6 is loaded *)
  check Alcotest.int "SRv6 parse chain" (112 + 320 + 448 + 320) chain

let () =
  Alcotest.run "harness"
    [
      ( "synth",
        [
          Alcotest.test_case "chain compiles" `Quick test_synth_chain_compiles;
          Alcotest.test_case "chain unmergeable" `Quick test_synth_stages_unmergeable;
          Alcotest.test_case "snippet unmergeable" `Quick
            test_synth_snippet_unmergeable_with_neighbours;
          Alcotest.test_case "stream deterministic" `Quick test_synth_stream_deterministic;
          Alcotest.test_case "greedy cheaper" `Quick test_synth_greedy_cheaper_alignment;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "paper constants" `Quick test_paper_constants_consistent;
          Alcotest.test_case "case setup" `Quick test_case_setup_produces_designs;
          Alcotest.test_case "throughput profiles" `Quick test_throughput_profiles_shapes;
        ] );
    ]
