(* Tests for the disaggregated memory pool and the crossbar. *)

let check = Alcotest.check

let mk_pool ?(nblocks = 16) ?(block_width = 128) ?(block_depth = 1024) ?(nclusters = 4) ()
    =
  Mem.Pool.create ~nblocks ~block_width ~block_depth ~nclusters

(* --- blocks needed: the paper's ceil(W/w) x ceil(D/d) formula ------------- *)

let test_blocks_needed () =
  let p = mk_pool () in
  check Alcotest.int "fits one block" 1 (Mem.Pool.blocks_needed p ~entry_width:128 ~depth:1024);
  check Alcotest.int "wide entry" 2 (Mem.Pool.blocks_needed p ~entry_width:129 ~depth:1024);
  check Alcotest.int "deep table" 2 (Mem.Pool.blocks_needed p ~entry_width:64 ~depth:1025);
  check Alcotest.int "wide and deep" 6
    (Mem.Pool.blocks_needed p ~entry_width:300 ~depth:2000);
  match Mem.Pool.blocks_needed p ~entry_width:0 ~depth:10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero width should fail"

(* --- allocation lifecycle --------------------------------------------------- *)

let test_allocate_release () =
  let p = mk_pool () in
  (match Mem.Pool.allocate p ~table:"t1" ~entry_width:256 ~depth:2048 () with
  | Ok alloc ->
    check Alcotest.int "blocks" 4 (List.length alloc.Mem.Pool.blocks);
    check Alcotest.int "used" 4 (fst (Mem.Pool.stats p))
  | Error e -> Alcotest.fail e);
  (* double allocation refused *)
  (match Mem.Pool.allocate p ~table:"t1" ~entry_width:128 ~depth:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double allocation should fail");
  check Alcotest.int "release recycles" 4 (Mem.Pool.release p ~table:"t1");
  check Alcotest.int "all free" 0 (fst (Mem.Pool.stats p));
  check Alcotest.int "release idempotent" 0 (Mem.Pool.release p ~table:"t1")

let test_allocate_exhaustion () =
  let p = mk_pool ~nblocks:4 () in
  (match Mem.Pool.allocate p ~table:"big" ~entry_width:128 ~depth:(5 * 1024) () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "5 blocks from a 4-block pool should fail");
  (* pool state untouched by the failed allocation *)
  check Alcotest.int "nothing leaked" 0 (fst (Mem.Pool.stats p))

let test_allocate_in_cluster () =
  let p = mk_pool () in
  (* 4 blocks per cluster *)
  (match Mem.Pool.allocate p ~table:"a" ~entry_width:128 ~depth:4096 ~cluster:2 () with
  | Ok alloc ->
    List.iter
      (fun b -> check Alcotest.int "in cluster 2" 2 (Mem.Pool.block p b).Mem.Pool.cluster)
      alloc.Mem.Pool.blocks
  | Error e -> Alcotest.fail e);
  (* cluster 2 now full *)
  match Mem.Pool.allocate p ~table:"b" ~entry_width:128 ~depth:1 ~cluster:2 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cluster 2 should be exhausted"

let test_non_adjacent_allocation () =
  (* "An SRAM table can be mapped to some non-adjacent memory blocks" *)
  let p = mk_pool ~nblocks:8 ~nclusters:1 () in
  let alloc_ok table depth =
    match Mem.Pool.allocate p ~table ~entry_width:128 ~depth () with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  let _a = alloc_ok "a" 1024 in
  let _b = alloc_ok "b" 1024 in
  let _c = alloc_ok "c" 1024 in
  ignore (Mem.Pool.release p ~table:"b");
  (* a 2-block table now needs block 1 (the hole) and block 3+ *)
  let d = alloc_ok "d" 2048 in
  check Alcotest.int "two blocks" 2 (List.length d.Mem.Pool.blocks);
  check Alcotest.bool "non-adjacent blocks used" true
    (match d.Mem.Pool.blocks with [ x; y ] -> abs (x - y) > 1 | _ -> false)

let test_migrate () =
  let p = mk_pool () in
  (match Mem.Pool.allocate p ~table:"t" ~entry_width:128 ~depth:1024 ~cluster:0 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Mem.Pool.migrate p ~table:"t" ~entry_width:128 ~depth:1024 ~cluster:3 with
  | Ok (alloc, copied) ->
    check Alcotest.int "entries copied" 1024 copied;
    List.iter
      (fun b -> check Alcotest.int "moved to cluster 3" 3 (Mem.Pool.block p b).Mem.Pool.cluster)
      alloc.Mem.Pool.blocks
  | Error e -> Alcotest.fail e);
  (* migration of an unallocated table fails *)
  match Mem.Pool.migrate p ~table:"zzz" ~entry_width:128 ~depth:1 ~cluster:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "migrating unknown table should fail"

let test_migrate_rollback () =
  let p = mk_pool ~nblocks:8 ~nclusters:4 () in
  (* fill cluster 1 so migration into it must fail *)
  (match Mem.Pool.allocate p ~table:"filler" ~entry_width:128 ~depth:2048 ~cluster:1 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Mem.Pool.allocate p ~table:"t" ~entry_width:128 ~depth:1024 ~cluster:0 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Mem.Pool.migrate p ~table:"t" ~entry_width:128 ~depth:1024 ~cluster:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "migration into a full cluster should fail");
  (* rollback: t still owns its original block *)
  check Alcotest.int "rollback restored ownership" 1
    (List.length (Mem.Pool.owner_blocks p "t"))

let test_cluster_stats_and_utilization () =
  let p = mk_pool () in
  ignore (Mem.Pool.allocate p ~table:"t" ~entry_width:128 ~depth:2048 ~cluster:1 ());
  let stats = Mem.Pool.cluster_stats p in
  check Alcotest.int "four clusters" 4 (List.length stats);
  (match List.find_opt (fun (c, _, _) -> c = 1) stats with
  | Some (_, used, total) ->
    check Alcotest.int "cluster 1 used" 2 used;
    check Alcotest.int "cluster 1 total" 4 total
  | None -> Alcotest.fail "cluster 1 missing");
  check (Alcotest.float 0.001) "utilization" 0.125 (Mem.Pool.utilization p)

(* --- crossbar ----------------------------------------------------------------- *)

let test_crossbar_full () =
  let xb = Mem.Crossbar.create ~kind:Mem.Crossbar.Full ~ntsps:8 in
  check Alcotest.bool "full reaches everything" true
    (Mem.Crossbar.reachable xb ~tsp:0 ~block_cluster:3);
  (match Mem.Crossbar.connect xb ~tsp:0 ~block:5 ~block_cluster:3 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.bool "connected" true (Mem.Crossbar.connected xb ~tsp:0 ~block:5);
  check Alcotest.int "ports in use" 1 (Mem.Crossbar.ports_in_use xb);
  check Alcotest.bool "disconnect" true (Mem.Crossbar.disconnect xb ~tsp:0 ~block:5);
  check Alcotest.bool "disconnected" false (Mem.Crossbar.connected xb ~tsp:0 ~block:5)

let test_crossbar_clustered () =
  let xb = Mem.Crossbar.create ~kind:(Mem.Crossbar.Clustered 4) ~ntsps:8 in
  (* TSPs 0-1 -> cluster 0, 2-3 -> 1, etc. *)
  check Alcotest.int "tsp 0 cluster" 0 (Mem.Crossbar.tsp_cluster xb 0);
  check Alcotest.int "tsp 7 cluster" 3 (Mem.Crossbar.tsp_cluster xb 7);
  check Alcotest.bool "same cluster reachable" true
    (Mem.Crossbar.reachable xb ~tsp:2 ~block_cluster:1);
  check Alcotest.bool "cross cluster unreachable" false
    (Mem.Crossbar.reachable xb ~tsp:2 ~block_cluster:0);
  match Mem.Crossbar.connect xb ~tsp:2 ~block:0 ~block_cluster:0 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cross-cluster connect should fail"

let test_crossbar_reconfig_count () =
  let xb = Mem.Crossbar.create ~kind:Mem.Crossbar.Full ~ntsps:4 in
  ignore (Mem.Crossbar.connect xb ~tsp:1 ~block:1 ~block_cluster:0);
  ignore (Mem.Crossbar.connect xb ~tsp:1 ~block:1 ~block_cluster:0) (* idempotent *);
  ignore (Mem.Crossbar.connect xb ~tsp:1 ~block:2 ~block_cluster:0);
  ignore (Mem.Crossbar.disconnect xb ~tsp:1 ~block:1);
  check Alcotest.int "reconfig events" 3 (Mem.Crossbar.reconfigs xb);
  check Alcotest.int "disconnect_all" 1 (Mem.Crossbar.disconnect_all xb ~tsp:1)

let test_crossbar_validation () =
  (match Mem.Crossbar.create ~kind:(Mem.Crossbar.Clustered 3) ~ntsps:8 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ntsps must be a multiple of clusters");
  let xb = Mem.Crossbar.create ~kind:Mem.Crossbar.Full ~ntsps:4 in
  match Mem.Crossbar.reachable xb ~tsp:9 ~block_cluster:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad tsp id should fail"

(* --- property: allocation conservation ----------------------------------------- *)

let prop_pool_conservation =
  QCheck.Test.make ~count:100 ~name:"allocate/release conserves blocks"
    QCheck.(small_list (pair (int_range 1 400) (int_range 1 3000)))
    (fun requests ->
      let p = mk_pool ~nblocks:32 () in
      let allocated = ref [] in
      List.iteri
        (fun i (w, d) ->
          let table = Printf.sprintf "t%d" i in
          match Mem.Pool.allocate p ~table ~entry_width:w ~depth:d () with
          | Ok alloc ->
            allocated := (table, List.length alloc.Mem.Pool.blocks) :: !allocated
          | Error _ -> ())
        requests;
      let used_now = fst (Mem.Pool.stats p) in
      let expected = List.fold_left (fun acc (_, n) -> acc + n) 0 !allocated in
      let ok_used = used_now = expected in
      List.iter (fun (t, _) -> ignore (Mem.Pool.release p ~table:t)) !allocated;
      ok_used && fst (Mem.Pool.stats p) = 0)

let () =
  Alcotest.run "mem"
    [
      ( "pool",
        [
          Alcotest.test_case "blocks needed" `Quick test_blocks_needed;
          Alcotest.test_case "allocate/release" `Quick test_allocate_release;
          Alcotest.test_case "exhaustion" `Quick test_allocate_exhaustion;
          Alcotest.test_case "cluster constraint" `Quick test_allocate_in_cluster;
          Alcotest.test_case "non-adjacent blocks" `Quick test_non_adjacent_allocation;
          Alcotest.test_case "migrate" `Quick test_migrate;
          Alcotest.test_case "migrate rollback" `Quick test_migrate_rollback;
          Alcotest.test_case "stats" `Quick test_cluster_stats_and_utilization;
          QCheck_alcotest.to_alcotest prop_pool_conservation;
        ] );
      ( "crossbar",
        [
          Alcotest.test_case "full" `Quick test_crossbar_full;
          Alcotest.test_case "clustered" `Quick test_crossbar_clustered;
          Alcotest.test_case "reconfig count" `Quick test_crossbar_reconfig_count;
          Alcotest.test_case "validation" `Quick test_crossbar_validation;
        ] );
    ]
