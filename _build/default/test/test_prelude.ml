(* Unit and property tests for the prelude: JSON, RNG, CRC-32, hex,
   FNV hash, text tables. *)

module J = Prelude.Json

let check = Alcotest.check

(* --- JSON --------------------------------------------------------------- *)

let test_json_emit () =
  check Alcotest.string "null" "null" (J.to_string J.Null);
  check Alcotest.string "bool" "true" (J.to_string (J.Bool true));
  check Alcotest.string "int" "-42" (J.to_string (J.Int (-42)));
  check Alcotest.string "string escaping" {|"a\"b\\c\nd"|}
    (J.to_string (J.String "a\"b\\c\nd"));
  check Alcotest.string "list" "[1,2,3]" (J.to_string (J.List [ J.Int 1; J.Int 2; J.Int 3 ]));
  check Alcotest.string "obj" {|{"a":1,"b":[]}|}
    (J.to_string (J.Obj [ ("a", J.Int 1); ("b", J.List []) ]))

let test_json_parse () =
  check Alcotest.bool "null" true (J.of_string "null" = J.Null);
  check Alcotest.bool "nested" true
    (J.of_string {| {"x": [1, {"y": "z"}], "w": -3} |}
    = J.Obj [ ("x", J.List [ J.Int 1; J.Obj [ ("y", J.String "z") ] ]); ("w", J.Int (-3)) ]);
  check Alcotest.bool "whitespace" true (J.of_string "  [ ]  " = J.List []);
  check Alcotest.bool "float" true
    (match J.of_string "1.5" with J.Float f -> f = 1.5 | _ -> false)

let test_json_parse_errors () =
  let fails s =
    match J.of_string s with
    | exception J.Parse_error _ -> true
    | _ -> false
  in
  check Alcotest.bool "trailing garbage" true (fails "1 2");
  check Alcotest.bool "unterminated string" true (fails {|"abc|});
  check Alcotest.bool "unterminated list" true (fails "[1, 2");
  check Alcotest.bool "bad literal" true (fails "nul");
  check Alcotest.bool "missing colon" true (fails {|{"a" 1}|})

let test_json_accessors () =
  let j = J.of_string {|{"a": 1, "b": "x", "c": [true]}|} in
  check Alcotest.int "member int" 1 (J.to_int (J.member_exn "a" j));
  check Alcotest.string "member string" "x" (J.to_str (J.member_exn "b" j));
  check Alcotest.bool "member list" true (J.to_bool (List.hd (J.to_list (J.member_exn "c" j))));
  check Alcotest.bool "missing member" true (J.member "zz" j = None)

(* Random JSON generator for the round-trip property. *)
let json_gen =
  let open QCheck.Gen in
  sized (fun size ->
      fix
        (fun self size ->
          let leaf =
            oneof
              [
                return J.Null;
                map (fun b -> J.Bool b) bool;
                map (fun i -> J.Int i) (int_range (-1000000) 1000000);
                map (fun s -> J.String s) (string_size ~gen:printable (int_range 0 12));
              ]
          in
          if size = 0 then leaf
          else
            oneof
              [
                leaf;
                map (fun l -> J.List l) (list_size (int_range 0 4) (self (size / 2)));
                map
                  (fun kvs -> J.Obj kvs)
                  (list_size (int_range 0 4)
                     (pair (string_size ~gen:printable (int_range 1 8)) (self (size / 2))));
              ])
        (min size 4))

let rec has_dup_keys = function
  | J.Obj kvs ->
    let keys = List.map fst kvs in
    List.length (List.sort_uniq compare keys) <> List.length keys
    || List.exists (fun (_, v) -> has_dup_keys v) kvs
  | J.List l -> List.exists has_dup_keys l
  | _ -> false

let prop_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"json parse(emit(j)) = j (modulo dup keys)"
    (QCheck.make json_gen) (fun j ->
      QCheck.assume (not (has_dup_keys j));
      J.equal (J.of_string (J.to_string j)) j)

let prop_json_pretty_roundtrip =
  QCheck.Test.make ~count:200 ~name:"json parse(pretty(j)) = j"
    (QCheck.make json_gen) (fun j ->
      QCheck.assume (not (has_dup_keys j));
      J.equal (J.of_string (J.to_string_pretty j)) j)

(* --- RNG ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Prelude.Rng.create 7 and b = Prelude.Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int "same seed, same stream" (Prelude.Rng.int a 1000)
      (Prelude.Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Prelude.Rng.create 123 in
  for _ = 1 to 10_000 do
    let v = Prelude.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_float_range () =
  let rng = Prelude.Rng.create 5 in
  for _ = 1 to 1000 do
    let f = Prelude.Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of [0,1): %f" f
  done

let test_rng_shuffle_permutes () =
  let rng = Prelude.Rng.create 9 in
  let arr = Array.init 50 (fun i -> i) in
  Prelude.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.bool "shuffle is a permutation" true (sorted = Array.init 50 (fun i -> i));
  check Alcotest.bool "shuffle moved something" true (arr <> Array.init 50 (fun i -> i))

let test_rng_distribution () =
  let rng = Prelude.Rng.create 31 in
  let buckets = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Prelude.Rng.int rng 4 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun b ->
      let frac = float_of_int b /. float_of_int n in
      if frac < 0.23 || frac > 0.27 then Alcotest.failf "skewed bucket: %f" frac)
    buckets

(* --- CRC-32 ------------------------------------------------------------- *)

let test_crc32_vectors () =
  check Alcotest.int32 "crc32(\"123456789\")" 0xCBF43926l
    (Prelude.Crc32.digest "123456789");
  check Alcotest.int32 "crc32(\"\")" 0l (Prelude.Crc32.digest "");
  check Alcotest.int32 "crc32(\"a\")" 0xE8B7BE43l (Prelude.Crc32.digest "a")

let test_crc32_int_nonneg () =
  let rng = Prelude.Rng.create 77 in
  for _ = 1 to 500 do
    let s = Prelude.Rng.bytes rng (Prelude.Rng.int rng 64) in
    if Prelude.Crc32.digest_int s < 0 then Alcotest.fail "negative crc int"
  done

(* --- Hex ---------------------------------------------------------------- *)

let test_hex_roundtrip () =
  let rng = Prelude.Rng.create 3 in
  for _ = 1 to 200 do
    let s = Prelude.Rng.bytes rng (Prelude.Rng.int rng 40) in
    check Alcotest.string "hex roundtrip" s (Prelude.Hex.to_string (Prelude.Hex.of_string s))
  done

let test_hex_spaces () =
  check Alcotest.string "spaces ignored" "\xde\xad\xbe\xef"
    (Prelude.Hex.to_string "de ad be ef")

let test_hex_odd_fails () =
  match Prelude.Hex.to_string "abc" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "odd-length hex should fail"

let test_hexdump_shape () =
  let d = Prelude.Hex.dump "hello world, this is a test of the dump" in
  check Alcotest.bool "has offset column" true
    (String.length d > 0 && String.sub d 0 4 = "0000");
  check Alcotest.bool "has ascii gutter" true (String.contains d '|')

(* --- FNV hash ----------------------------------------------------------- *)

let test_xxh_stable () =
  check Alcotest.bool "deterministic" true
    (Prelude.Xxh.digest64 "hello" = Prelude.Xxh.digest64 "hello");
  check Alcotest.bool "seed changes output" true
    (Prelude.Xxh.digest64 ~seed:1L "hello" <> Prelude.Xxh.digest64 ~seed:2L "hello");
  check Alcotest.bool "different inputs differ" true
    (Prelude.Xxh.digest64 "hello" <> Prelude.Xxh.digest64 "hellp")

let test_xxh_int_nonneg () =
  let rng = Prelude.Rng.create 11 in
  for _ = 1 to 500 do
    let s = Prelude.Rng.bytes rng (Prelude.Rng.int rng 32) in
    if Prelude.Xxh.digest_int s < 0 then Alcotest.fail "negative hash"
  done

(* --- Texttab ------------------------------------------------------------ *)

let test_texttab_alignment () =
  let out =
    Prelude.Texttab.render ~header:[ "a"; "bb" ] [ [ "xxx"; "y" ]; [ "z"; "wwww" ] ]
  in
  let lines = String.split_on_char '\n' out |> List.filter (( <> ) "") in
  let widths = List.map String.length lines in
  check Alcotest.bool "all lines same width" true
    (List.for_all (( = ) (List.hd widths)) widths)

let test_texttab_ragged_rows () =
  let out = Prelude.Texttab.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  check Alcotest.bool "renders" true (String.length out > 0)

let () =
  Alcotest.run "prelude"
    [
      ( "json",
        [
          Alcotest.test_case "emit" `Quick test_json_emit;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_pretty_roundtrip;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "distribution" `Quick test_rng_distribution;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "digest_int nonneg" `Quick test_crc32_int_nonneg;
        ] );
      ( "hex",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "spaces" `Quick test_hex_spaces;
          Alcotest.test_case "odd fails" `Quick test_hex_odd_fails;
          Alcotest.test_case "dump shape" `Quick test_hexdump_shape;
        ] );
      ( "xxh",
        [
          Alcotest.test_case "stable" `Quick test_xxh_stable;
          Alcotest.test_case "nonneg" `Quick test_xxh_int_nonneg;
        ] );
      ( "texttab",
        [
          Alcotest.test_case "alignment" `Quick test_texttab_alignment;
          Alcotest.test_case "ragged rows" `Quick test_texttab_ragged_rows;
        ] );
    ]
