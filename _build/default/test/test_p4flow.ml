(* The P4 design flow: p4lite parses the P4 base design, rp4fc translates
   it to rP4, rp4bc compiles it — and the result forwards exactly like the
   hand-written rP4 base design, on both the IPSA device and the PISA
   baseline. *)

let check = Alcotest.check
let int = Alcotest.int

(* --- p4lite parsing ---------------------------------------------------- *)

let test_parse_base () =
  let prog = P4lite.Parser.parse_string Usecases.P4_base.source in
  check int "three header types" 3 (List.length prog.P4lite.Ast.header_types);
  check int "three instances" 3 (List.length prog.P4lite.Ast.instances);
  check int "twelve tables" 12 (List.length prog.P4lite.Ast.tables);
  check int "four parser states" 4 (List.length prog.P4lite.Ast.states);
  check int "five metadata fields" 5 (List.length prog.P4lite.Ast.metadata)

let test_hlir_parse_graph () =
  let prog = P4lite.Parser.parse_string Usecases.P4_base.source in
  let g = P4lite.Hlir.build prog in
  Alcotest.(check (option string)) "first instance" (Some "ethernet") g.P4lite.Hlir.pg_first;
  check int "two parse edges" 2 (List.length g.P4lite.Hlir.pg_edges);
  Alcotest.(check (list string))
    "ethernet selects on ethertype" [ "ethertype" ]
    (P4lite.Hlir.sel_fields_of g "ethernet")

let test_translate_roundtrips_through_parser () =
  (* rp4fc output must be valid rP4 that parses back to the same program. *)
  let rp4_src = Rp4fc.Translate.source_to_source Usecases.P4_base.source in
  let prog = Rp4.Parser.parse_string rp4_src in
  match Rp4.Semantic.build prog with
  | Error errs -> Alcotest.failf "translated program invalid: %s" (String.concat "; " errs)
  | Ok _ -> check int "twelve stages" 12 (List.length (Rp4.Ast.all_stages prog))

(* --- behavioural equivalence on IPSA ------------------------------------ *)

let boot_translated () =
  let rp4_src = Rp4fc.Translate.source_to_source Usecases.P4_base.source in
  let device = Ipsa.Device.create ~ntsps:8 () in
  match Controller.Session.boot ~source:rp4_src device with
  | Error errs -> Alcotest.failf "boot failed: %s" (String.concat "; " errs)
  | Ok session -> (
    match Controller.Session.run_script session Usecases.Base_l23.population with
    | Error e -> Alcotest.failf "population failed: %s" e
    | Ok _ -> (session, device))

let inject_exn device pkt =
  match Ipsa.Device.inject device pkt with
  | Some (port, ctx) -> (port, ctx)
  | None -> Alcotest.fail "packet dropped"

let test_translated_design_forwards () =
  let _session, device = boot_translated () in
  let cases =
    [
      ( Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.routed_v4_flow,
        Usecases.Base_l23.expected_port_routed_v4 );
      ( Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.host_route_v4_flow,
        Usecases.Base_l23.expected_port_host_v4 );
      ( Net.Flowgen.ipv6_udp ~in_port:1 Usecases.Base_l23.routed_v6_flow,
        Usecases.Base_l23.expected_port_routed_v6 );
      ( Net.Flowgen.l2 ~in_port:5 Usecases.Base_l23.bridged_flow,
        Usecases.Base_l23.expected_port_bridged );
    ]
  in
  List.iter
    (fun (pkt, expected) ->
      let port, _ = inject_exn device pkt in
      check int "translated design forwards like the rP4 original" expected port)
    cases

let test_translated_design_merges_like_original () =
  let session, _ = boot_translated () in
  let mapping = Rp4bc.Design.mapping (Controller.Session.design session) in
  check int "translated design also fits 7 TSPs" 7 (List.length mapping)

(* --- PISA baseline ------------------------------------------------------ *)

let compile_full_exn src =
  let prog = Rp4.Parser.parse_string src in
  let pool = Ipsa.Device.default_pool () in
  match Rp4bc.Compile.compile_full ~pool prog with
  | Error errs -> Alcotest.failf "compile failed: %s" (String.concat "; " errs)
  | Ok c -> c

let pisa_with_base () =
  let compiled = compile_full_exn Usecases.Base_l23.source in
  let device = Pisa.Device.create ~nstages:8 () in
  (match Pisa.Deploy.install device compiled.Rp4bc.Compile.design with
  | Error e -> Alcotest.failf "pisa install failed: %s" e
  | Ok _ -> ());
  (match
     Pisa.Deploy.populate device compiled.Rp4bc.Compile.design
       Usecases.Base_l23.population
   with
  | Error e -> Alcotest.failf "pisa populate failed: %s" e
  | Ok _ -> ());
  (device, compiled.Rp4bc.Compile.design)

let pisa_inject_exn device pkt =
  match Pisa.Device.inject device pkt with
  | Some (port, ctx) -> (port, ctx)
  | None -> Alcotest.fail "pisa dropped packet"

let test_pisa_forwards () =
  let device, _ = pisa_with_base () in
  let port, _ =
    pisa_inject_exn device (Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.routed_v4_flow)
  in
  check int "pisa routes v4" Usecases.Base_l23.expected_port_routed_v4 port;
  let port, _ =
    pisa_inject_exn device (Net.Flowgen.ipv6_udp ~in_port:1 Usecases.Base_l23.routed_v6_flow)
  in
  check int "pisa routes v6" Usecases.Base_l23.expected_port_routed_v6 port;
  let port, _ =
    pisa_inject_exn device (Net.Flowgen.l2 ~in_port:5 Usecases.Base_l23.bridged_flow)
  in
  check int "pisa bridges" Usecases.Base_l23.expected_port_bridged port

let test_pisa_reload_loses_entries_and_packets () =
  let device, _ = pisa_with_base () in
  (* Update under PISA = full reload of base+ECMP, all entries lost. *)
  let compiled' =
    let prog = P4lite.Parser.parse_string Usecases.P4_base.source_with_ecmp in
    let rp4 = Rp4.Pretty.program (Rp4fc.Translate.translate prog) in
    compile_full_exn rp4
  in
  Pisa.Device.begin_reload device;
  (* Traffic arriving during the swap is lost. *)
  let dropped_before = (Pisa.Device.stats device).Pisa.Device.dropped_during_reload in
  (match Pisa.Device.inject device (Net.Flowgen.ipv4_udp Usecases.Base_l23.routed_v4_flow) with
  | None -> ()
  | Some _ -> Alcotest.fail "packet should be dropped during reload");
  check int "reload drops arrivals" (dropped_before + 1)
    (Pisa.Device.stats device).Pisa.Device.dropped_during_reload;
  (match Pisa.Deploy.install device compiled'.Rp4bc.Compile.design with
  | Error e -> Alcotest.failf "reload failed: %s" e
  | Ok _ -> ());
  Pisa.Device.end_reload device;
  (* All tables are empty until the controller repopulates everything. *)
  (match Pisa.Device.find_table device "ipv4_lpm" with
  | Some t -> check int "entries lost on reload" 0 (Table.entry_count t)
  | None -> Alcotest.fail "ipv4_lpm missing after reload");
  (* PISA repopulation covers every table of the *new* design: the base
     entries (minus the removed nexthop stage's table) plus the ECMP
     members. *)
  let population' =
    String.split_on_char '\n' Usecases.Base_l23.population
    |> List.filter (fun l -> not (String.length l > 18 && String.sub l 10 7 = "nexthop"))
    |> String.concat "\n"
  in
  (match
     Pisa.Deploy.populate device compiled'.Rp4bc.Compile.design
       (population' ^ "\n" ^ Usecases.Ecmp.population)
   with
  | Error e -> Alcotest.failf "repopulate failed: %s" e
  | Ok n -> Alcotest.(check bool) "full repopulation required" true (n > 20));
  let port, _ =
    pisa_inject_exn device (Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.routed_v4_flow)
  in
  Alcotest.(check bool)
    "ECMP active after reload" true
    (List.mem port Usecases.Ecmp.v4_member_ports)

let () =
  Alcotest.run "p4flow"
    [
      ( "p4lite",
        [
          Alcotest.test_case "parse base" `Quick test_parse_base;
          Alcotest.test_case "hlir graph" `Quick test_hlir_parse_graph;
        ] );
      ( "rp4fc",
        [
          Alcotest.test_case "translate roundtrip" `Quick
            test_translate_roundtrips_through_parser;
          Alcotest.test_case "behavioural equivalence" `Quick
            test_translated_design_forwards;
          Alcotest.test_case "same TSP count" `Quick
            test_translated_design_merges_like_original;
        ] );
      ( "pisa",
        [
          Alcotest.test_case "forwards" `Quick test_pisa_forwards;
          Alcotest.test_case "reload cost" `Quick
            test_pisa_reload_loses_entries_and_packets;
        ] );
    ]
