(* End-to-end integration tests: boot the base L2/L3 design on an ipbm
   device, forward traffic, then exercise all three in-situ updates of the
   paper (C1 ECMP, C2 SRv6, C3 flow probe) through the controller. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let resolve_file name =
  match name with
  | "ecmp.rp4" -> Usecases.Ecmp.source
  | "srv6.rp4" -> Usecases.Srv6.source
  | "probe.rp4" -> Usecases.Flowprobe.source
  | other -> invalid_arg ("no such file " ^ other)

let boot_base () =
  let device = Ipsa.Device.create ~ntsps:8 () in
  match
    Controller.Session.boot ~resolve_file ~source:Usecases.Base_l23.source device
  with
  | Error errs -> Alcotest.failf "boot failed: %s" (String.concat "; " errs)
  | Ok session -> (
    match Controller.Session.run_script session Usecases.Base_l23.population with
    | Error e -> Alcotest.failf "population failed: %s" e
    | Ok _ -> (session, device))

let run_script_exn session script =
  match Controller.Session.run_script session script with
  | Error e -> Alcotest.failf "script failed: %s" e
  | Ok outputs -> outputs

let inject_exn device pkt =
  match Ipsa.Device.inject device pkt with
  | Some (port, ctx) -> (port, ctx)
  | None -> Alcotest.failf "packet dropped: %s" (Format.asprintf "%a" Net.Packet.pp pkt)

(* --- base design ------------------------------------------------------ *)

let test_base_mapping () =
  let session, _device = boot_base () in
  let mapping = Rp4bc.Design.mapping (Controller.Session.design session) in
  check int "base design occupies 7 TSPs" 7 (List.length mapping);
  (* D/E, F/G and I/J are merged pairs. *)
  let stages_of i =
    match List.find_opt (fun (t, _, _) -> t = i) mapping with
    | Some (_, stages, _) -> stages
    | None -> []
  in
  check (Alcotest.list Alcotest.string) "TSP3 hosts the merged LPM stages"
    [ "ipv4_lpm"; "ipv6_lpm" ] (stages_of 3);
  check (Alcotest.list Alcotest.string) "TSP4 hosts the merged host-route stages"
    [ "ipv4_host"; "ipv6_host" ] (stages_of 4);
  check (Alcotest.list Alcotest.string) "TSP6 hosts rewrite+dmac"
    [ "l2_l3_rewrite"; "dmac" ] (stages_of 6)

let test_base_routed_v4 () =
  let _session, device = boot_base () in
  let pkt = Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.routed_v4_flow in
  let port, _ctx = inject_exn device pkt in
  check int "routed v4 to port 1" Usecases.Base_l23.expected_port_routed_v4 port;
  (* verify the rewrite: TTL decremented, SMAC = router MAC, DMAC = nexthop *)
  let out = Net.Packet.contents pkt in
  let eth = Net.Proto.Eth.of_string out in
  let ip = Net.Proto.Ipv4.of_string ~off:14 out in
  check int "TTL decremented" 63 ip.Net.Proto.Ipv4.ttl;
  Alcotest.(check string)
    "SMAC rewritten to router MAC" Usecases.Base_l23.router_mac
    (Net.Addr.Mac.to_string eth.Net.Proto.Eth.src);
  Alcotest.(check string)
    "DMAC rewritten to nexthop MAC" "02:00:00:00:00:b1"
    (Net.Addr.Mac.to_string eth.Net.Proto.Eth.dst)

let test_base_host_route_wins () =
  let _session, device = boot_base () in
  let pkt = Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.host_route_v4_flow in
  let port, _ = inject_exn device pkt in
  check int "host route beats the LPM route" Usecases.Base_l23.expected_port_host_v4 port

let test_base_routed_v6 () =
  let _session, device = boot_base () in
  let pkt = Net.Flowgen.ipv6_udp ~in_port:2 Usecases.Base_l23.routed_v6_flow in
  let port, _ = inject_exn device pkt in
  check int "routed v6 to port 3" Usecases.Base_l23.expected_port_routed_v6 port;
  let ip = Net.Proto.Ipv6.of_string ~off:14 (Net.Packet.contents pkt) in
  check int "hop limit decremented" 63 ip.Net.Proto.Ipv6.hop_limit

let test_base_bridged () =
  let _session, device = boot_base () in
  let pkt = Net.Flowgen.l2 ~in_port:5 Usecases.Base_l23.bridged_flow in
  let port, ctx = inject_exn device pkt in
  check int "bridged frame to port 4" Usecases.Base_l23.expected_port_bridged port;
  check int "bridged frame is not routed" 0
    (Net.Meta.get_int ctx.Ipsa.Context.meta "l3_type")

(* --- C1: ECMP --------------------------------------------------------- *)

let load_ecmp () =
  let session, device = boot_base () in
  let _ = run_script_exn session Usecases.Ecmp.script in
  let _ = run_script_exn session Usecases.Ecmp.population in
  (session, device)

let test_ecmp_replaces_nexthop () =
  let session, device = load_ecmp () in
  check bool "nexthop table recycled" true
    (Ipsa.Device.find_table device "nexthop" = None);
  check bool "ecmp tables live" true (Ipsa.Device.find_table device "ecmp_ipv4" <> None);
  (* ecmp takes over H's TSP slot; everything else keeps its template *)
  let mapping = Rp4bc.Design.mapping (Controller.Session.design session) in
  check int "still 7 TSPs" 7 (List.length mapping);
  match Controller.Session.last_timing session with
  | None -> Alcotest.fail "no timing recorded"
  | Some t ->
    check int "only one template rewritten"
      1 t.Controller.Session.compile_stats.Rp4bc.Compile.templates_emitted

let test_ecmp_balances () =
  let _session, device = load_ecmp () in
  (* Many routed flows must spread over both ECMP members (ports 1, 2). *)
  let ports = Hashtbl.create 4 in
  for i = 0 to 63 do
    let flow =
      Net.Flowgen.make_flow
        ~dst_mac:(Net.Addr.Mac.of_string_exn Usecases.Base_l23.router_mac)
        ~dst_ip4:(Net.Addr.Ipv4.of_int (0x0A010000 lor (2 + i)))
        ()
    in
    let pkt = Net.Flowgen.ipv4_udp ~in_port:0 flow in
    let port, _ = inject_exn device pkt in
    check bool "port is an ECMP member" true (List.mem port Usecases.Ecmp.v4_member_ports);
    Hashtbl.replace ports port ()
  done;
  check int "both members used" 2 (Hashtbl.length ports)

let test_ecmp_deterministic_per_flow () =
  let _session, device = load_ecmp () in
  let flow = Usecases.Base_l23.routed_v4_flow in
  let first, _ = inject_exn device (Net.Flowgen.ipv4_udp ~in_port:0 flow) in
  for _ = 1 to 10 do
    let port, _ = inject_exn device (Net.Flowgen.ipv4_udp ~in_port:0 flow) in
    check int "same flow, same member" first port
  done

let test_ecmp_no_loss_during_update () =
  let session, device = boot_base () in
  let before = (Ipsa.Device.stats device).Ipsa.Device.dropped in
  let _ = run_script_exn session Usecases.Ecmp.script in
  let _ = run_script_exn session Usecases.Ecmp.population in
  let after = (Ipsa.Device.stats device).Ipsa.Device.dropped in
  check int "in-situ update drops no packets" before after;
  (* and traffic flows immediately after *)
  let pkt = Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.routed_v4_flow in
  let port, _ = inject_exn device pkt in
  check bool "forwarding works right after the update" true
    (List.mem port Usecases.Ecmp.v4_member_ports)

(* --- C2: SRv6 --------------------------------------------------------- *)

let load_srv6 () =
  let session, device = boot_base () in
  let _ = run_script_exn session Usecases.Srv6.script in
  let _ = run_script_exn session Usecases.Srv6.population in
  (session, device)

let test_srv6_end_processing () =
  let _session, device = load_srv6 () in
  let pkt =
    Net.Flowgen.srv6_ipv4 ~in_port:1 ~segments:Usecases.Srv6.segments ~segments_left:1
      Usecases.Srv6.srv6_flow
  in
  let port, _ = inject_exn device pkt in
  check int "SR endpoint forwards toward the final segment" Usecases.Srv6.expected_port
    port;
  let out = Net.Packet.contents pkt in
  let ip6 = Net.Proto.Ipv6.of_string ~off:14 out in
  Alcotest.(check string)
    "outer DA advanced to seg0"
    (Net.Addr.Ipv6.to_string Usecases.Srv6.seg_final)
    (Net.Addr.Ipv6.to_string ip6.Net.Proto.Ipv6.dst);
  let srh = Net.Proto.Srh.of_string ~off:(14 + 40) out in
  check int "segments_left decremented" 0 srh.Net.Proto.Srh.segments_left

let test_srv6_transit () =
  let _session, device = load_srv6 () in
  (* segments_left = 0: transit/last-hop processing via end_transit. *)
  let pkt =
    Net.Flowgen.srv6_ipv4 ~in_port:1 ~segments:Usecases.Srv6.segments ~segments_left:0
      Usecases.Srv6.srv6_flow
  in
  let port, _ = inject_exn device pkt in
  check int "transit node forwards on the active segment" Usecases.Srv6.expected_port port

let test_srv6_plain_v6_still_works () =
  let _session, device = load_srv6 () in
  let pkt = Net.Flowgen.ipv6_udp ~in_port:2 Usecases.Base_l23.routed_v6_flow in
  let port, _ = inject_exn device pkt in
  check int "pure L3 forwarding is preserved" Usecases.Base_l23.expected_port_routed_v6
    port

(* --- C3: flow probe --------------------------------------------------- *)

let test_flow_probe_threshold () =
  let session, device = boot_base () in
  let _ = run_script_exn session Usecases.Flowprobe.script in
  let _ = run_script_exn session Usecases.Flowprobe.population in
  let marked = ref 0 and unmarked = ref 0 in
  for _ = 1 to Usecases.Flowprobe.threshold + 5 do
    let pkt = Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Flowprobe.probed_flow in
    let _, ctx = inject_exn device pkt in
    if Net.Meta.get_int ctx.Ipsa.Context.meta "mark" = 1 then incr marked
    else incr unmarked
  done;
  check int "packets below the threshold are unmarked" Usecases.Flowprobe.threshold
    !unmarked;
  check int "packets beyond the threshold are marked" 5 !marked;
  (* other flows are never marked *)
  let pkt = Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.routed_v4_flow in
  let _, ctx = inject_exn device pkt in
  check int "unprobed flow unmarked" 0 (Net.Meta.get_int ctx.Ipsa.Context.meta "mark")

let test_flow_probe_merges_into_port_map () =
  let session, _device = boot_base () in
  let _ = run_script_exn session Usecases.Flowprobe.script in
  let mapping = Rp4bc.Design.mapping (Controller.Session.design session) in
  check int "probe merges into an existing TSP" 7 (List.length mapping);
  match List.find_opt (fun (i, _, _) -> i = 0) mapping with
  | Some (_, stages, _) ->
    check
      (Alcotest.list Alcotest.string)
      "TSP0 hosts port_map + probe" [ "port_map"; "flow_probe_st" ] stages
  | None -> Alcotest.fail "TSP0 empty"

(* --- unload ------------------------------------------------------------ *)

let test_unload_restores () =
  let session, device = load_ecmp () in
  (match Controller.Session.run_script session "unload --func_name ecmp" with
  | Error e -> Alcotest.failf "unload failed: %s" e
  | Ok _ -> ());
  check bool "ecmp tables recycled" true (Ipsa.Device.find_table device "ecmp_ipv4" = None);
  (* The nexthop stage is gone from the chain too (it was replaced), so
     routed traffic now misses the DMAC rewrite; bridged traffic works. *)
  let pkt = Net.Flowgen.l2 ~in_port:5 Usecases.Base_l23.bridged_flow in
  let port, _ = inject_exn device pkt in
  check int "bridged path unaffected" Usecases.Base_l23.expected_port_bridged port

let () =
  Alcotest.run "integration"
    [
      ( "base",
        [
          Alcotest.test_case "mapping" `Quick test_base_mapping;
          Alcotest.test_case "routed v4" `Quick test_base_routed_v4;
          Alcotest.test_case "host route wins" `Quick test_base_host_route_wins;
          Alcotest.test_case "routed v6" `Quick test_base_routed_v6;
          Alcotest.test_case "bridged" `Quick test_base_bridged;
        ] );
      ( "ecmp",
        [
          Alcotest.test_case "replaces nexthop" `Quick test_ecmp_replaces_nexthop;
          Alcotest.test_case "balances" `Quick test_ecmp_balances;
          Alcotest.test_case "per-flow stable" `Quick test_ecmp_deterministic_per_flow;
          Alcotest.test_case "no loss during update" `Quick test_ecmp_no_loss_during_update;
        ] );
      ( "srv6",
        [
          Alcotest.test_case "end processing" `Quick test_srv6_end_processing;
          Alcotest.test_case "transit" `Quick test_srv6_transit;
          Alcotest.test_case "plain v6 preserved" `Quick test_srv6_plain_v6_still_works;
        ] );
      ( "flow-probe",
        [
          Alcotest.test_case "threshold marking" `Quick test_flow_probe_threshold;
          Alcotest.test_case "merges into TSP0" `Quick test_flow_probe_merges_into_port_map;
        ] );
      ("unload", [ Alcotest.test_case "restores" `Quick test_unload_restores ]);
    ]
