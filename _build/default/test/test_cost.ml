(* Tests for the hardware cost models: resources (Table 2), power
   (Table 3, Fig. 6), throughput (Sec. 5) and update timing (Table 1).
   Each model must (a) reproduce the paper's numbers at its calibration
   point and (b) behave sensibly away from it. *)

let check = Alcotest.check
let approx = Alcotest.float 0.02

module R = Ipsa_cost.Resources
module P = Ipsa_cost.Power
module T = Ipsa_cost.Throughput

(* --- resources ---------------------------------------------------------------- *)

let test_resources_calibration () =
  let p = R.base_design_params in
  let tp = R.total_usage R.Pisa p and ti = R.total_usage R.Ipsa p in
  check approx "PISA LUT total" 6.20 tp.R.lut;
  check approx "PISA FF total" 0.57 tp.R.ff;
  check approx "IPSA LUT total" 7.12 ti.R.lut;
  check approx "IPSA FF total" 0.92 ti.R.ff;
  check (Alcotest.float 0.5) "LUT overhead ~14.84%" 14.84 (R.lut_overhead_percent p);
  check (Alcotest.float 0.5) "FF overhead ~61.40%" 61.40 (R.ff_overhead_percent p)

let test_resources_componentwise () =
  let p = R.base_design_params in
  check approx "front parser (PISA only)" 0.88 (R.component_usage R.Pisa p R.Front_parser).R.lut;
  check approx "no front parser under IPSA" 0.0
    (R.component_usage R.Ipsa p R.Front_parser).R.lut;
  check approx "no crossbar under PISA" 0.0 (R.component_usage R.Pisa p R.Crossbar).R.lut;
  check approx "crossbar" 1.29 (R.component_usage R.Ipsa p R.Crossbar).R.lut

let test_resources_scale_with_design () =
  let p = R.base_design_params in
  let bigger = { p with R.nstages = 16 } in
  check Alcotest.bool "more stages, more LUTs" true
    ((R.total_usage R.Ipsa bigger).R.lut > (R.total_usage R.Ipsa p).R.lut);
  let deeper_parse = { p with R.parse_bits = 2 * p.R.parse_bits } in
  check Alcotest.bool "deeper parse graph costs PISA" true
    ((R.total_usage R.Pisa deeper_parse).R.lut > (R.total_usage R.Pisa p).R.lut);
  check Alcotest.bool "clustering shrinks the crossbar" true
    ((R.crossbar_usage { p with R.clustered = true }).R.lut
    < (R.crossbar_usage p).R.lut)

(* --- power --------------------------------------------------------------------- *)

let test_power_anchors () =
  let full = { P.nstages = 8; effective = 8; table_kbits = 900 } in
  let pisa = P.total P.Pisa full and ipsa = P.total P.Ipsa full in
  check Alcotest.bool "PISA total near the paper's ~2.95 W" true
    (pisa > 2.5 && pisa < 3.3);
  let overhead = 100.0 *. (ipsa -. pisa) /. pisa in
  check Alcotest.bool "IPSA ~10% higher at full pipeline" true
    (overhead > 7.0 && overhead < 14.0)

let test_power_pisa_flat_ipsa_grows () =
  let sweep = P.sweep ~nstages:8 ~table_kbits:900 in
  let pisa_vals = List.map (fun (_, p, _) -> p) sweep in
  let ipsa_vals = List.map (fun (_, _, i) -> i) sweep in
  check Alcotest.bool "PISA flat in effective stages" true
    (List.for_all (fun v -> Float.abs (v -. List.hd pisa_vals) < 1e-9) pisa_vals);
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  check Alcotest.bool "IPSA increases with active TSPs" true (increasing ipsa_vals)

let test_power_crossover () =
  (* Fig. 6's qualitative claim: IPSA cheaper below the crossover *)
  match P.crossover ~nstages:8 ~table_kbits:900 with
  | Some n ->
    check Alcotest.bool "crossover in the upper half" true (n >= 5 && n <= 8);
    let below = { P.nstages = 8; effective = n - 1; table_kbits = 900 } in
    check Alcotest.bool "IPSA cheaper below crossover" true
      (P.total P.Ipsa below < P.total P.Pisa below)
  | None -> Alcotest.fail "expected a crossover within 8 stages"

let test_power_breakdown_sums () =
  let p = { P.nstages = 8; effective = 6; table_kbits = 500 } in
  List.iter
    (fun arch ->
      let b = P.breakdown arch p in
      check (Alcotest.float 1e-6) "breakdown sums to total" b.P.b_total
        (b.P.b_front_parser +. b.P.b_processors +. b.P.b_crossbar +. b.P.b_static_mem))
    [ P.Pisa; P.Ipsa ]

(* --- throughput ------------------------------------------------------------------ *)

let profile tables =
  {
    T.tp_tables =
      List.map (fun (n, w, h) -> { T.tc_name = n; tc_entry_width = w; tc_hashed = h }) tables;
    tp_parse_bits = 0;
  }

let test_throughput_ordering () =
  let p = T.default_params in
  let narrow = [ profile [ ("a", 100, false) ] ] in
  let wide = [ profile [ ("a", 300, false) ] ] in
  let pisa_mpps prof = T.mpps T.Pisa p ~profiles:prof ~max_chain_bits:592 in
  let ipsa_mpps prof = T.mpps T.Ipsa p ~profiles:prof ~max_chain_bits:592 in
  check Alcotest.bool "PISA faster than IPSA" true (pisa_mpps narrow > ipsa_mpps narrow);
  check Alcotest.bool "wide entries slow IPSA" true (ipsa_mpps narrow > ipsa_mpps wide);
  (* the factor is in the paper's 2-4x band for typical entries *)
  let ratio = pisa_mpps narrow /. ipsa_mpps narrow in
  check Alcotest.bool "gap in the 2-5x band" true (ratio > 2.0 && ratio < 5.0)

let test_throughput_remedies () =
  let narrow = [ profile [ ("a", 300, false) ] ] in
  let base = T.mpps T.Ipsa T.default_params ~profiles:narrow ~max_chain_bits:592 in
  let wider =
    T.mpps T.Ipsa { T.default_params with T.bus_width_bits = 512 } ~profiles:narrow
      ~max_chain_bits:592
  in
  let pipelined =
    T.mpps T.Ipsa { T.default_params with T.tsp_pipelined = true } ~profiles:narrow
      ~max_chain_bits:592
  in
  check Alcotest.bool "wider bus helps" true (wider > base);
  check Alcotest.bool "pipelined TSP helps" true (pipelined > base)

let test_throughput_bottleneck_is_max () =
  let p = T.default_params in
  let two_stages = [ profile [ ("a", 100, false) ]; profile [ ("b", 400, false) ] ] in
  let only_wide = [ profile [ ("b", 400, false) ] ] in
  check (Alcotest.float 1e-6) "pipeline limited by slowest stage"
    (T.mpps T.Ipsa p ~profiles:only_wide ~max_chain_bits:0)
    (T.mpps T.Ipsa p ~profiles:two_stages ~max_chain_bits:0)

let test_throughput_relevant_filter () =
  let p = T.default_params in
  let mixed = [ profile [ ("v4", 100, false); ("v6", 400, false) ] ] in
  let v4_only = T.mpps ~relevant:(fun t -> t = "v4") T.Ipsa p ~profiles:mixed ~max_chain_bits:0 in
  let all = T.mpps T.Ipsa p ~profiles:mixed ~max_chain_bits:0 in
  check Alcotest.bool "off-path tables don't bottleneck" true (v4_only > all)

let test_throughput_parse_chain_limits_pisa () =
  let p = T.default_params in
  let prof = [ profile [ ("a", 64, false) ] ] in
  let shallow = T.mpps T.Pisa p ~profiles:prof ~max_chain_bits:100 in
  let deep = T.mpps T.Pisa p ~profiles:prof ~max_chain_bits:4000 in
  check Alcotest.bool "deep parse chain slows PISA" true (shallow > deep)

(* --- timing ------------------------------------------------------------------------ *)

let test_timing_shape () =
  let m = Ipsa_cost.Timing.default in
  let mk_stats work =
    {
      Rp4bc.Compile.stages_compiled = 0;
      templates_emitted = 0;
      tables_placed = 0;
      tables_freed = 0;
      align = None;
      work_units = work;
      config_bytes = 0;
    }
  in
  let t_full = Ipsa_cost.Timing.t_compile_pisa m ~full_stats:(mk_stats 280) in
  let t_inc = Ipsa_cost.Timing.t_compile_ipsa m ~inc_stats:(mk_stats 45) in
  check Alcotest.bool "incremental compile ~2% of full" true (t_inc /. t_full < 0.05);
  let report =
    {
      Ipsa.Device.lr_bytes = 2000;
      lr_templates = 1;
      lr_tables_created = 2;
      lr_tables_freed = 1;
      lr_crossbar_changes = 2;
      lr_drain_cycles = 20;
    }
  in
  let tl_ipsa = Ipsa_cost.Timing.t_load_ipsa m ~report ~new_entries:3 in
  let tl_pisa = Ipsa_cost.Timing.t_load_pisa m ~total_entries:30 in
  check Alcotest.bool "patch load ~2% of full reload" true (tl_ipsa /. tl_pisa < 0.05);
  check Alcotest.bool "ipsa load in the paper's 20-30ms regime" true
    (tl_ipsa > 15.0 && tl_ipsa < 35.0)

let () =
  Alcotest.run "ipsa_cost"
    [
      ( "resources",
        [
          Alcotest.test_case "calibration" `Quick test_resources_calibration;
          Alcotest.test_case "components" `Quick test_resources_componentwise;
          Alcotest.test_case "scaling" `Quick test_resources_scale_with_design;
        ] );
      ( "power",
        [
          Alcotest.test_case "anchors" `Quick test_power_anchors;
          Alcotest.test_case "flat vs growing" `Quick test_power_pisa_flat_ipsa_grows;
          Alcotest.test_case "crossover" `Quick test_power_crossover;
          Alcotest.test_case "breakdown" `Quick test_power_breakdown_sums;
        ] );
      ( "throughput",
        [
          Alcotest.test_case "ordering" `Quick test_throughput_ordering;
          Alcotest.test_case "remedies" `Quick test_throughput_remedies;
          Alcotest.test_case "bottleneck" `Quick test_throughput_bottleneck_is_max;
          Alcotest.test_case "relevant filter" `Quick test_throughput_relevant_filter;
          Alcotest.test_case "parse chain" `Quick test_throughput_parse_chain_limits_pisa;
        ] );
      ("timing", [ Alcotest.test_case "shape" `Quick test_timing_shape ]);
    ]
