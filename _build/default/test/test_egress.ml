(* Tests for the ingress/egress-split base design (elastic pipeline with a
   live TM) and for pre-compiled updates (prepare / apply_prepared). *)

let check = Alcotest.check

let boot_split () =
  let device = Ipsa.Device.create ~ntsps:8 () in
  match Controller.Session.boot ~source:Usecases.Base_split.source device with
  | Error errs -> Alcotest.failf "boot split: %s" (String.concat "; " errs)
  | Ok session -> (
    match Controller.Session.run_script session Usecases.Base_split.population with
    | Error e -> Alcotest.failf "population: %s" e
    | Ok _ -> (session, device))

let inject_exn device pkt =
  match Ipsa.Device.inject device pkt with
  | Some (port, ctx) -> (port, ctx)
  | None -> Alcotest.fail "packet dropped"

(* --- split layout ------------------------------------------------------- *)

let test_split_source_valid () =
  let prog = Rp4.Parser.parse_string Usecases.Base_split.source in
  check Alcotest.int "three egress stages" 3 (List.length prog.Rp4.Ast.egress);
  check Alcotest.int "seven ingress stages" 7 (List.length prog.Rp4.Ast.ingress);
  check Alcotest.bool "egress entry" true (prog.Rp4.Ast.egress_entry = Some "nexthop")

let test_split_layout_roles () =
  let session, device = boot_split () in
  let layout = (Controller.Session.design session).Rp4bc.Design.layout in
  (* ingress groups occupy the left, egress the right, bypass between *)
  let pipeline = Ipsa.Device.pipeline device in
  check Alcotest.bool "TSP 0 is ingress" true
    (Ipsa.Pipeline.role pipeline 0 = Ipsa.Pipeline.Ingress);
  check Alcotest.bool "TSP 7 is egress" true
    (Ipsa.Pipeline.role pipeline 7 = Ipsa.Pipeline.Egress);
  check Alcotest.bool "a bypassed TSP exists between" true
    (List.exists
       (fun i -> Ipsa.Pipeline.role pipeline i = Ipsa.Pipeline.Bypass)
       [ 5 ]);
  check Alcotest.int "seven active TSPs" 7 (Rp4bc.Layout.active_tsps layout)

let test_split_forwarding_matches_base () =
  let _session, device = boot_split () in
  let cases =
    [
      ( Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.routed_v4_flow,
        Usecases.Base_l23.expected_port_routed_v4 );
      ( Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.host_route_v4_flow,
        Usecases.Base_l23.expected_port_host_v4 );
      ( Net.Flowgen.ipv6_udp ~in_port:1 Usecases.Base_l23.routed_v6_flow,
        Usecases.Base_l23.expected_port_routed_v6 );
      ( Net.Flowgen.l2 ~in_port:5 Usecases.Base_l23.bridged_flow,
        Usecases.Base_l23.expected_port_bridged );
    ]
  in
  List.iter
    (fun (pkt, expected) ->
      let port, _ = inject_exn device pkt in
      check Alcotest.int "split design forwards like the unsplit one" expected port)
    cases

let test_split_tm_carries_traffic () =
  let _session, device = boot_split () in
  for _ = 1 to 20 do
    ignore (inject_exn device (Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.routed_v4_flow))
  done;
  (* every packet crossed the TM between ingress and egress *)
  let stats = Ipsa.Device.stats device in
  check Alcotest.int "all forwarded" 20 stats.Ipsa.Device.forwarded

let test_split_update_still_works () =
  (* in-situ ECMP insertion on the split design: ecmp replaces the
     egress-side nexthop stage *)
  let device = Ipsa.Device.create ~ntsps:8 () in
  let resolve_file = function
    | "ecmp.rp4" -> Usecases.Ecmp.source
    | f -> invalid_arg f
  in
  let session =
    match
      Controller.Session.boot ~resolve_file ~source:Usecases.Base_split.source device
    with
    | Ok s -> s
    | Error errs -> Alcotest.failf "boot: %s" (String.concat "; " errs)
  in
  (match Controller.Session.run_script session Usecases.Base_split.population with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* on the split design ECMP replaces the *egress entry* stage, so the
     script retargets the egress pipe instead of splicing after a FIB
     stage (the unsplit script's shape) *)
  let split_ecmp_script =
    {s|
load ecmp.rp4 --func_name ecmp
add_link ecmp l2_l3_rewrite
del_link nexthop l2_l3_rewrite
set_entry --pipe egress --stage ecmp
commit
|s}
  in
  (match Controller.Session.run_script session split_ecmp_script with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "ecmp script: %s" e);
  (match Controller.Session.run_script session Usecases.Ecmp.population with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let port, _ =
    inject_exn device (Net.Flowgen.ipv4_udp ~in_port:0 Usecases.Base_l23.routed_v4_flow)
  in
  check Alcotest.bool "ECMP active on the egress side" true
    (List.mem port Usecases.Ecmp.v4_member_ports)

(* --- pre-compiled updates ------------------------------------------------- *)

let resolve_file = function
  | "ecmp.rp4" -> Usecases.Ecmp.source
  | "probe.rp4" -> Usecases.Flowprobe.source
  | f -> invalid_arg f

let boot_base () =
  let device = Ipsa.Device.create ~ntsps:8 () in
  match
    Controller.Session.boot ~resolve_file ~source:Usecases.Base_l23.source device
  with
  | Error errs -> Alcotest.failf "boot: %s" (String.concat "; " errs)
  | Ok session -> (
    match Controller.Session.run_script session Usecases.Base_l23.population with
    | Error e -> Alcotest.failf "population: %s" e
    | Ok _ -> (session, device))

let stage_ecmp session =
  List.iter
    (fun line ->
      match Controller.Command.parse_line line with
      | Some cmd -> (
        match Controller.Session.exec session cmd with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "stage: %s" e)
      | None -> ())
    (String.split_on_char '\n' Usecases.Ecmp.script
    |> List.filter (fun l -> String.trim l <> "commit"))

let test_prepare_then_apply () =
  let session, device = boot_base () in
  stage_ecmp session;
  let prepared =
    match Controller.Session.prepare session with
    | Ok p -> p
    | Error errs -> Alcotest.failf "prepare: %s" (String.concat "; " errs)
  in
  (* the device is untouched until application *)
  check Alcotest.bool "nexthop still live" true
    (Ipsa.Device.find_table device "nexthop" <> None);
  check Alcotest.bool "ecmp not yet installed" true
    (Ipsa.Device.find_table device "ecmp_ipv4" = None);
  (match Controller.Session.apply_prepared session prepared with
  | Ok timing ->
    check Alcotest.int "one template rewritten" 1
      timing.Controller.Session.compile_stats.Rp4bc.Compile.templates_emitted
  | Error errs -> Alcotest.failf "apply: %s" (String.concat "; " errs));
  check Alcotest.bool "ecmp installed" true
    (Ipsa.Device.find_table device "ecmp_ipv4" <> None);
  check Alcotest.bool "nexthop recycled" true
    (Ipsa.Device.find_table device "nexthop" = None)

let test_prepare_stale_base_rejected () =
  let session, _device = boot_base () in
  stage_ecmp session;
  let prepared =
    match Controller.Session.prepare session with
    | Ok p -> p
    | Error errs -> Alcotest.failf "prepare: %s" (String.concat "; " errs)
  in
  (* a different update lands first: the prepared patch is stale *)
  (match Controller.Session.run_script session Usecases.Flowprobe.script with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "probe: %s" e);
  match Controller.Session.apply_prepared session prepared with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale prepared patch accepted"

let () =
  Alcotest.run "egress+prepared"
    [
      ( "split-design",
        [
          Alcotest.test_case "source valid" `Quick test_split_source_valid;
          Alcotest.test_case "layout roles" `Quick test_split_layout_roles;
          Alcotest.test_case "forwarding" `Quick test_split_forwarding_matches_base;
          Alcotest.test_case "tm carries traffic" `Quick test_split_tm_carries_traffic;
          Alcotest.test_case "update on egress side" `Quick test_split_update_still_works;
        ] );
      ( "prepared-updates",
        [
          Alcotest.test_case "prepare then apply" `Quick test_prepare_then_apply;
          Alcotest.test_case "stale base rejected" `Quick test_prepare_stale_base_rejected;
        ] );
    ]
