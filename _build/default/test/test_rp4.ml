(* Tests for the rP4 language: lexer, parser, pretty-printer round trip,
   and semantic analysis (including snippet merging). *)

let check = Alcotest.check

(* --- lexer ---------------------------------------------------------------- *)

let toks src =
  Array.to_list (Rp4.Lexer.tokenize src) |> List.map (fun l -> l.Rp4.Lexer.tok)

let test_lexer_basics () =
  check Alcotest.bool "idents and punct" true
    (toks "stage foo { }"
    = [ Rp4.Lexer.IDENT "stage"; IDENT "foo"; LBRACE; RBRACE; EOF ]);
  check Alcotest.bool "numbers" true
    (toks "42 0x2A 0b101010"
    = [ Rp4.Lexer.INT 42L; INT 42L; INT 42L; EOF ]);
  check Alcotest.bool "width literal" true
    (toks "8w0xFF" = [ Rp4.Lexer.WINT (8, 255L); EOF ]);
  check Alcotest.bool "two-char ops" true
    (toks "== != <= >= && || ->"
    = [ Rp4.Lexer.EQEQ; NEQ; LE; GE; ANDAND; OROR; ARROW; EOF ])

let test_lexer_comments () =
  check Alcotest.bool "line comment" true (toks "a // foo\n b" = [ Rp4.Lexer.IDENT "a"; IDENT "b"; EOF ]);
  check Alcotest.bool "block comment" true
    (toks "a /* x\ny */ b" = [ Rp4.Lexer.IDENT "a"; IDENT "b"; EOF ]);
  match Rp4.Lexer.tokenize "/* unterminated" with
  | exception Rp4.Lexer.Error _ -> ()
  | _ -> Alcotest.fail "unterminated comment should fail"

let test_lexer_positions () =
  let located = Rp4.Lexer.tokenize "a\n  b" in
  check Alcotest.int "line of b" 2 located.(1).Rp4.Lexer.line;
  check Alcotest.int "col of b" 3 located.(1).Rp4.Lexer.col

(* --- parser ---------------------------------------------------------------- *)

let parse = Rp4.Parser.parse_string

let test_parse_header () =
  let p =
    parse
      {|
header ipv4 {
  bit<8> ttl;
  bit<32> dst;
  implicit parser (ttl) { 6 : tcp; 17 : udp; }
}
header tcp { bit<16> sport; }
header udp { bit<16> sport; }
|}
  in
  check Alcotest.int "three headers" 3 (List.length p.Rp4.Ast.headers);
  match Rp4.Ast.find_header p "ipv4" with
  | Some h -> (
    check Alcotest.int "fields" 2 (List.length h.Rp4.Ast.hd_fields);
    match h.Rp4.Ast.hd_parser with
    | Some ip ->
      check Alcotest.bool "selector" true (ip.Rp4.Ast.ip_sel = [ "ttl" ]);
      check Alcotest.int "cases" 2 (List.length ip.Rp4.Ast.ip_cases)
    | None -> Alcotest.fail "expected implicit parser")
  | None -> Alcotest.fail "missing header"

let test_parse_action_exprs () =
  let p =
    parse
      {|
header h { bit<8> a; bit<8> b; }
action act(bit<8> x) {
  h.a = (h.b + 1) - x;
  h.b = h.a & 8w0x0F;
  drop();
  mark(3);
}
|}
  in
  match Rp4.Ast.find_action p "act" with
  | Some a -> check Alcotest.int "four statements" 4 (List.length a.Rp4.Ast.ad_body)
  | None -> Alcotest.fail "missing action"

let test_parse_matcher_conditions () =
  let p =
    parse
      {|
header v4 { bit<8> x; }
header v6 { bit<8> y; }
table t1 { key = { v4.x : exact; } size = 4; }
table t2 { key = { v6.y : exact; } size = 4; }
stage s {
  parser { v4, v6 };
  matcher {
    if (v4.isValid() && meta.in_port != 0) t1.apply();
    else if (!(v6.isValid())) t2.apply();
    else;
  };
  executor { 1 : NoAction; default : NoAction; }
}
|}
  in
  match Rp4.Ast.find_stage p "s" with
  | Some s -> (
    match s.Rp4.Ast.st_matcher with
    | Rp4.Ast.M_if (Rp4.Ast.C_and (Rp4.Ast.C_valid "v4", Rp4.Ast.C_rel (Rp4.Ast.Neq, _, _)), Rp4.Ast.M_apply "t1", Rp4.Ast.M_if (Rp4.Ast.C_not (Rp4.Ast.C_valid "v6"), Rp4.Ast.M_apply "t2", Rp4.Ast.M_nop)) ->
      ()
    | _ -> Alcotest.fail "unexpected matcher shape")
  | None -> Alcotest.fail "missing stage"

let test_parse_table_kinds () =
  let p =
    parse
      {|
header h { bit<32> d; }
table t {
  key = {
    h.d : lpm;
    meta.in_port : exact;
    meta.out_port : ternary;
    meta.mark : hash;
  }
  size = 128;
}
|}
  in
  match Rp4.Ast.find_table p "t" with
  | Some t ->
    check Alcotest.int "key fields" 4 (List.length t.Rp4.Ast.td_key);
    check Alcotest.int "size" 128 t.Rp4.Ast.td_size;
    check Alcotest.bool "kinds" true
      (List.map snd t.Rp4.Ast.td_key
      = [ Table.Key.Lpm; Table.Key.Exact; Table.Key.Ternary; Table.Key.Hash ])
  | None -> Alcotest.fail "missing table"

let test_parse_user_funcs () =
  let p =
    parse
      {|
header h { bit<8> a; }
table t { key = { h.a : exact; } size = 4; }
control rP4_Ingress {
  stage s1 { parser { h }; matcher { t.apply(); }; executor { default : NoAction; } }
}
user_funcs {
  func f1 { s1 }
  ingress_entry : s1;
}
|}
  in
  check Alcotest.int "funcs" 1 (List.length p.Rp4.Ast.funcs);
  check Alcotest.bool "entry" true (p.Rp4.Ast.ingress_entry = Some "s1")

let test_parse_errors () =
  let fails src =
    match parse src with
    | exception (Rp4.Parser.Error _ | Rp4.Lexer.Error _) -> true
    | _ -> false
  in
  check Alcotest.bool "garbage" true (fails "garbage here");
  check Alcotest.bool "unclosed header" true (fails "header h { bit<8> a;");
  check Alcotest.bool "missing width" true (fails "header h { bit<> a; }");
  check Alcotest.bool "bad match kind" true
    (fails "header h { bit<8> a; } table t { key = { h.a : wrong; } size = 4; }");
  check Alcotest.bool "unknown control" true (fails "control Bogus { }")

(* --- pretty-printer round trip ---------------------------------------------- *)

let test_pretty_roundtrip_base () =
  let p = parse Usecases.Base_l23.source in
  let p' = parse (Rp4.Pretty.program p) in
  (* compare structurally: same names everywhere, same matchers *)
  check Alcotest.bool "headers" true (p.Rp4.Ast.headers = p'.Rp4.Ast.headers);
  check Alcotest.bool "structs" true (p.Rp4.Ast.structs = p'.Rp4.Ast.structs);
  check Alcotest.bool "actions" true (p.Rp4.Ast.actions = p'.Rp4.Ast.actions);
  check Alcotest.bool "tables" true (p.Rp4.Ast.tables = p'.Rp4.Ast.tables);
  check Alcotest.bool "funcs" true (p.Rp4.Ast.funcs = p'.Rp4.Ast.funcs);
  check Alcotest.int "stages" (List.length (Rp4.Ast.all_stages p))
    (List.length (Rp4.Ast.all_stages p'))

let test_pretty_roundtrip_snippets () =
  List.iter
    (fun src ->
      let p = parse src in
      let p' = parse (Rp4.Pretty.program p) in
      check Alcotest.bool "snippet roundtrips" true
        (List.map (fun s -> s.Rp4.Ast.st_name) (Rp4.Ast.all_stages p)
        = List.map (fun s -> s.Rp4.Ast.st_name) (Rp4.Ast.all_stages p')))
    [ Usecases.Ecmp.source; Usecases.Srv6.source; Usecases.Flowprobe.source ]

(* pretty -> parse -> pretty is a fixpoint *)
let test_pretty_fixpoint () =
  let p = parse Usecases.Base_l23.source in
  let once = Rp4.Pretty.program p in
  let twice = Rp4.Pretty.program (parse once) in
  check Alcotest.string "fixpoint" once twice

(* --- semantic ----------------------------------------------------------------- *)

let build src = Rp4.Semantic.build (parse src)

let test_semantic_accepts_base () =
  match build Usecases.Base_l23.source with
  | Ok _ -> ()
  | Error errs -> Alcotest.failf "base rejected: %s" (String.concat "; " errs)

let contains_sub sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let expect_error src fragment =
  match build src with
  | Ok _ -> Alcotest.failf "expected error mentioning %S" fragment
  | Error errs ->
    if not (List.exists (contains_sub fragment) errs) then
      Alcotest.failf "no error mentioning %S in: %s" fragment (String.concat "; " errs)

let test_semantic_errors () =
  expect_error "header h { bit<8> a; } header h { bit<8> a; bit<8> b; }" "duplicate";
  expect_error "header h { bit<8> a; bit<8> a; }" "duplicate";
  expect_error "header h { bit<8> a; implicit parser (zz) { } }" "selector field zz";
  expect_error
    "header h { bit<8> a; } table t { key = { h.nope : exact; } size = 4; }"
    "unknown field";
  expect_error "header h { bit<8> a; } table t { key = { h.a : exact; } size = 0; }"
    "non-positive size";
  expect_error
    {|header h { bit<8> a; }
      stage s { parser { h }; matcher { missing.apply(); }; executor { default : NoAction; } }|}
    "unknown table";
  expect_error
    {|header h { bit<8> a; }
      table t { key = { h.a : exact; } size = 4; }
      stage s { parser { h }; matcher { t.apply(); }; executor { 1 : ghost; default : NoAction; } }|}
    "unknown action";
  expect_error
    {|user_funcs { func f { nowhere } ingress_entry : nowhere; }|}
    "unknown stage"

let test_semantic_snippet_merge () =
  let base = parse Usecases.Base_l23.source in
  (* the ECMP snippet references base actions/headers and must check *)
  (match Rp4.Semantic.build ~base (parse Usecases.Ecmp.source) with
  | Ok env ->
    check Alcotest.bool "merged table present" true
      (Rp4.Ast.find_table env.Rp4.Semantic.prog "ecmp_ipv4" <> None);
    check Alcotest.bool "base table still present" true
      (Rp4.Ast.find_table env.Rp4.Semantic.prog "ipv4_lpm" <> None)
  | Error errs -> Alcotest.failf "snippet rejected: %s" (String.concat "; " errs));
  (* a snippet with a dangling reference is rejected *)
  match
    Rp4.Semantic.build ~base
      (parse
         {|stage bad { parser { ipv4 }; matcher { no_such_table.apply(); };
           executor { default : NoAction; } }|})
  with
  | Ok _ -> Alcotest.fail "dangling snippet accepted"
  | Error _ -> ()

let test_semantic_key_spec_and_entry_width () =
  match build Usecases.Base_l23.source with
  | Error errs -> Alcotest.failf "%s" (String.concat "; " errs)
  | Ok env ->
    let td = Option.get (Rp4.Ast.find_table env.Rp4.Semantic.prog "ipv4_lpm") in
    let spec = Rp4.Semantic.key_spec env td in
    check Alcotest.int "two key fields" 2 (List.length spec);
    check Alcotest.int "key width" 48 (Table.Key.total_width spec);
    (* entry width: key + widest action args (set_nexthop: 16) + tag 16 *)
    check Alcotest.int "entry width" 80 (Rp4.Semantic.entry_width env td)

let () =
  Alcotest.run "rp4"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "header" `Quick test_parse_header;
          Alcotest.test_case "action exprs" `Quick test_parse_action_exprs;
          Alcotest.test_case "matcher conditions" `Quick test_parse_matcher_conditions;
          Alcotest.test_case "table kinds" `Quick test_parse_table_kinds;
          Alcotest.test_case "user funcs" `Quick test_parse_user_funcs;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "roundtrip base" `Quick test_pretty_roundtrip_base;
          Alcotest.test_case "roundtrip snippets" `Quick test_pretty_roundtrip_snippets;
          Alcotest.test_case "fixpoint" `Quick test_pretty_fixpoint;
        ] );
      ( "semantic",
        [
          Alcotest.test_case "accepts base" `Quick test_semantic_accepts_base;
          Alcotest.test_case "errors" `Quick test_semantic_errors;
          Alcotest.test_case "snippet merge" `Quick test_semantic_snippet_merge;
          Alcotest.test_case "key spec" `Quick test_semantic_key_spec_and_entry_width;
        ] );
    ]
