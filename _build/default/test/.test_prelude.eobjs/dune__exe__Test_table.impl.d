test/test_table.ml: Alcotest Hashtbl List Net Option QCheck QCheck_alcotest Table
