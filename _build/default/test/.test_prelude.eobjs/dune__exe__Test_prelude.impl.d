test/test_prelude.ml: Alcotest Array List Prelude QCheck QCheck_alcotest String
