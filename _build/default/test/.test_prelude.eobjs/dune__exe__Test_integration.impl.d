test/test_integration.ml: Alcotest Controller Format Hashtbl Ipsa List Net Rp4bc String Usecases
