test/test_rp4bc.mli:
