test/test_p4flow.ml: Alcotest Controller Ipsa List Net P4lite Pisa Rp4 Rp4bc Rp4fc String Table Usecases
