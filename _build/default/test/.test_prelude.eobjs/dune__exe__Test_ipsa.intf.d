test/test_ipsa.mli:
