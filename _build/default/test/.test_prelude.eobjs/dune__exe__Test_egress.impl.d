test/test_egress.ml: Alcotest Controller Ipsa List Net Rp4 Rp4bc String Usecases
