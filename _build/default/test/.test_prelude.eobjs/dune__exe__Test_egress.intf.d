test/test_egress.mli:
