test/test_rp4.mli:
