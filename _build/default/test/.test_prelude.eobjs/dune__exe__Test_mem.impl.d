test/test_mem.ml: Alcotest List Mem Printf QCheck QCheck_alcotest
