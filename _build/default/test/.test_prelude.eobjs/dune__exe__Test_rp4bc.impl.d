test/test_rp4bc.ml: Alcotest Array Ipsa List Mem Option Prelude Printf Rp4 Rp4bc String Usecases
