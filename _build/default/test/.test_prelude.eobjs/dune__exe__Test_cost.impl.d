test/test_cost.ml: Alcotest Float Ipsa Ipsa_cost List Rp4bc
