test/test_net.ml: Alcotest Array Bytes Char List Net Printf QCheck QCheck_alcotest String
