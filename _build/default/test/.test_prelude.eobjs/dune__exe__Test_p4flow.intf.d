test/test_p4flow.mli:
