test/test_controller.ml: Alcotest Controller Ipsa List Net Rp4 Rp4bc String Table Usecases
