test/test_solver.ml: Alcotest Array Float Hashtbl List Prelude QCheck QCheck_alcotest Solver
