test/test_ipsa.ml: Alcotest Ipsa List Net Printf Rp4 Rp4bc String Table Usecases
