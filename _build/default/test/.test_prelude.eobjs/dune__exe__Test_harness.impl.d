test/test_harness.ml: Alcotest Controller Harness Ipsa_cost List Option Rp4 Rp4bc String
