test/test_rp4.ml: Alcotest Array List Option Rp4 String Table Usecases
