(* rp4c — the rP4 compiler command-line front end.

   Subcommands mirror the paper's design flow (Fig. 3):
     rp4c fc FILE.p4              P4 -> rP4 source + runtime table APIs
     rp4c bc FILE.rp4             full back-end compile: mapping + JSON config
     rp4c patch --base B --snippet S --func F --script SCRIPT
                                  incremental compile: updated design + patch *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- fc ---------------------------------------------------------------- *)

let fc_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.p4") in
  let run file =
    try
      let p4 = P4lite.Parser.parse_string (read_file file) in
      let rp4_prog = Rp4fc.Translate.translate p4 in
      print_endline (Rp4.Pretty.program rp4_prog);
      `Ok ()
    with
    | P4lite.Parser.Error e | Rp4.Lexer.Error e -> `Error (false, e)
    | P4lite.Hlir.Unsupported e -> `Error (false, e)
    | Rp4fc.Translate.Error e -> `Error (false, e)
  in
  Cmd.v
    (Cmd.info "fc" ~doc:"front-end compile: P4 to semantically equivalent rP4")
    Term.(ret (const run $ file))

(* --- bc ---------------------------------------------------------------- *)

let bc_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.rp4") in
  let ntsps =
    Arg.(value & opt int 8 & info [ "ntsps" ] ~doc:"number of physical TSPs")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"print the full device configuration JSON")
  in
  let run file ntsps json =
    try
      let prog = Rp4.Parser.parse_string (read_file file) in
      let pool = Ipsa.Device.default_pool () in
      let opts = { Rp4bc.Compile.default_options with Rp4bc.Compile.ntsps } in
      match Rp4bc.Compile.compile_full ~opts ~pool prog with
      | Error errs -> `Error (false, String.concat "\n" errs)
      | Ok compiled ->
        print_endline "TSP mapping:";
        print_endline (Rp4bc.Design.mapping_to_string compiled.Rp4bc.Compile.design);
        Printf.printf "\nconfig: %d bytes, %d templates, %d tables placed\n"
          compiled.Rp4bc.Compile.stats.Rp4bc.Compile.config_bytes
          compiled.Rp4bc.Compile.stats.Rp4bc.Compile.templates_emitted
          compiled.Rp4bc.Compile.stats.Rp4bc.Compile.tables_placed;
        if json then print_endline (Ipsa.Config.to_string compiled.Rp4bc.Compile.patch);
        `Ok ()
    with Rp4.Parser.Error e | Rp4.Lexer.Error e -> `Error (false, e)
  in
  Cmd.v
    (Cmd.info "bc" ~doc:"back-end compile: rP4 to TSP templates and configuration")
    Term.(ret (const run $ file $ ntsps $ json))

(* --- patch ------------------------------------------------------------- *)

let patch_cmd =
  let base =
    Arg.(required & opt (some file) None & info [ "base" ] ~docv:"BASE.rp4")
  in
  let script =
    Arg.(required & opt (some file) None & info [ "script" ] ~docv:"SCRIPT")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"print the patch JSON")
  in
  let run base script json =
    try
      let device = Ipsa.Device.create ~ntsps:8 () in
      let dir = Filename.dirname script in
      let resolve_file name =
        read_file (if Filename.is_relative name then Filename.concat dir name else name)
      in
      match
        Controller.Session.boot ~resolve_file ~source:(read_file base) device
      with
      | Error errs -> `Error (false, String.concat "\n" errs)
      | Ok session -> (
        match Controller.Session.run_script session (read_file script) with
        | Error e -> `Error (false, e)
        | Ok outputs ->
          List.iter print_endline outputs;
          (match Controller.Session.last_timing session with
          | Some t ->
            Printf.printf
              "\ncompile: %.2f ms, %d templates rewritten, %d tables placed, %d freed\n"
              (t.Controller.Session.compile_ns /. 1e6)
              t.Controller.Session.compile_stats.Rp4bc.Compile.templates_emitted
              t.Controller.Session.compile_stats.Rp4bc.Compile.tables_placed
              t.Controller.Session.compile_stats.Rp4bc.Compile.tables_freed
          | None -> ());
          print_endline "\nupdated base design:";
          print_endline (Rp4bc.Design.to_source (Controller.Session.design session));
          if json then ();
          `Ok ())
    with
    | Rp4.Parser.Error e | Rp4.Lexer.Error e -> `Error (false, e)
    | Sys_error e -> `Error (false, e)
  in
  Cmd.v
    (Cmd.info "patch"
       ~doc:"incremental compile: apply an update script to a base design")
    Term.(ret (const run $ base $ script $ json))

let () =
  let doc = "rP4 compiler tool-chain (front end, back end, incremental patches)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "rp4c" ~doc) [ fc_cmd; bc_cmd; patch_cmd ]))
