(* ipbm — run the IPSA behavioral-model switch from the command line.

     ipbm run BASE.rp4 [--script SCRIPT] [--traffic N] [--seed S]

   Boots a device with the base design, optionally applies a controller
   script (runtime updates and/or table population), injects a
   deterministic mixed traffic stream, and prints the device statistics
   and per-port output counts. With no arguments it runs the built-in
   L2/L3 base design demo. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run base script traffic seed =
  try
    let source =
      match base with Some f -> read_file f | None -> Usecases.Base_l23.source
    in
    let device = Ipsa.Device.create ~ntsps:8 () in
    let resolve_file name =
      match name with
      | "ecmp.rp4" -> Usecases.Ecmp.source
      | "srv6.rp4" -> Usecases.Srv6.source
      | "probe.rp4" -> Usecases.Flowprobe.source
      | f -> read_file f
    in
    match Controller.Session.boot ~resolve_file ~source device with
    | Error errs -> `Error (false, String.concat "\n" errs)
    | Ok session -> (
      let population =
        match (base, script) with
        | None, None -> Some Usecases.Base_l23.population
        | _ -> None
      in
      let scripts =
        (match population with Some p -> [ p ] | None -> [])
        @ (match script with Some f -> [ read_file f ] | None -> [])
      in
      let rec apply = function
        | [] -> Ok ()
        | s :: rest -> (
          match Controller.Session.run_script session s with
          | Ok outputs ->
            List.iter print_endline outputs;
            apply rest
          | Error e -> Error e)
      in
      match apply scripts with
      | Error e -> `Error (false, e)
      | Ok () ->
        print_endline "TSP mapping:";
        print_endline (Rp4bc.Design.mapping_to_string (Controller.Session.design session));
        let packets = Net.Flowgen.mixed_stream ~seed ~n:traffic ~nflows:16 () in
        let per_port = Hashtbl.create 8 in
        List.iter
          (fun pkt ->
            match Ipsa.Device.inject device pkt with
            | Some (port, _) ->
              Hashtbl.replace per_port port
                (1 + Option.value ~default:0 (Hashtbl.find_opt per_port port))
            | None -> ())
          packets;
        let stats = Ipsa.Device.stats device in
        Printf.printf
          "\ninjected %d, forwarded %d, dropped %d, avg cycles/pkt %.1f\n"
          stats.Ipsa.Device.injected stats.Ipsa.Device.forwarded
          stats.Ipsa.Device.dropped
          (if stats.Ipsa.Device.injected = 0 then 0.0
           else
             float_of_int stats.Ipsa.Device.total_cycles
             /. float_of_int stats.Ipsa.Device.injected);
        Hashtbl.fold (fun port n acc -> (port, n) :: acc) per_port []
        |> List.sort compare
        |> List.iter (fun (port, n) -> Printf.printf "  port %d: %d packets\n" port n);
        `Ok ())
  with
  | Rp4.Parser.Error e | Rp4.Lexer.Error e -> `Error (false, e)
  | Sys_error e -> `Error (false, e)

let () =
  let base =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"BASE.rp4")
  in
  let script =
    Arg.(value & opt (some file) None & info [ "script" ] ~docv:"SCRIPT")
  in
  let traffic =
    Arg.(value & opt int 1000 & info [ "traffic" ] ~doc:"packets to inject")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"traffic RNG seed") in
  let cmd =
    Cmd.v
      (Cmd.info "ipbm" ~doc:"IPSA behavioral-model software switch")
      Term.(ret (const run $ base $ script $ traffic $ seed))
  in
  exit (Cmd.eval cmd)
